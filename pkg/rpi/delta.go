package rpi

import (
	"math/rand"
	"net/netip"
	"sort"

	"rpeer/internal/core"
	"rpeer/internal/evolve"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
)

// Delta is one batch of world changes for Engine.Apply: membership
// joins and leaves plus refreshed per-interface RTT aggregates.
type Delta = core.Delta

// Join is one membership appearing in the registry dataset.
type Join = core.Join

// RecampaignDelta wraps a refreshed ping campaign as a delta: every
// interface the re-campaign measured usably gets its new aggregate
// (latest campaign wins), everything else keeps the old measurement.
func RecampaignDelta(refresh *PingResult) Delta {
	return Delta{Ping: pingsim.Overrides(refresh)}
}

// DeltaFromChurn turns one month of simulated membership evolution
// (evolve.Simulate) into a concrete delta against the current inputs:
// joins for the month's new members, leaves for its departures,
// sampled deterministically from seed. Departures come from the
// current dataset; joiners are ground-truth members the registry had
// not yet surfaced, topped up with newly minted members on free
// peering-LAN addresses once those run out.
func DeltaFromChurn(in Inputs, month evolve.MonthStats, seed int64) Delta {
	return sampleDelta(in, month.NewLocal+month.NewRemote, month.GoneLocal+month.GoneRemote, seed)
}

// ChurnDelta samples a membership-churn delta touching roughly frac of
// the current memberships (half leaves, half joins), deterministically
// in seed. It is the benchmark and load-test workload: a 1% churn is
// the paper's monthly reality at a large IXP.
func ChurnDelta(in Inputs, frac float64, seed int64) Delta {
	n := len(in.Dataset.IfaceIXP)
	k := int(frac * float64(n) / 2)
	if k < 1 {
		k = 1
	}
	return sampleDelta(in, k, k, seed)
}

// sampleDelta assembles nJoin joins and nLeave leaves against the
// current dataset state.
func sampleDelta(in Inputs, nJoin, nLeave int, seed int64) Delta {
	rng := rand.New(rand.NewSource(seed))
	ds := in.Dataset

	// Only memberships on exchanges the prefix plane knows can churn
	// round-trippably: a leave of an interface whose IXP lost its
	// prefix record to source noise could never re-join (joins are
	// validated against the prefix plane).
	ixpSet := make(map[string]bool)
	for _, name := range ds.PrefixIXP {
		ixpSet[name] = true
	}
	known := make([]netip.Addr, 0, len(ds.IfaceIXP))
	for ip, name := range ds.IfaceIXP {
		if ixpSet[name] {
			known = append(known, ip)
		}
	}
	sort.Slice(known, func(i, j int) bool { return known[i].Less(known[j]) })

	var d Delta
	taken := make(map[netip.Addr]bool)
	if nLeave > len(known) {
		nLeave = len(known)
	}
	for _, i := range rng.Perm(len(known))[:nLeave] {
		ip := known[i]
		taken[ip] = true
		d.Leaves = append(d.Leaves, Key{IXP: ds.IfaceIXP[ip], Iface: ip})
	}

	// Joiners: ground-truth members the registry noise hid...
	var hidden []*netsim.Member
	for _, m := range in.World.Members {
		if _, ok := ds.IfaceIXP[m.Iface]; ok {
			continue
		}
		if !ixpSet[in.World.IXP(m.IXP).Name] {
			continue
		}
		hidden = append(hidden, m)
	}
	sort.Slice(hidden, func(i, j int) bool { return hidden[i].Iface.Less(hidden[j].Iface) })
	for _, i := range rng.Perm(len(hidden)) {
		if len(d.Joins) >= nJoin {
			break
		}
		m := hidden[i]
		if taken[m.Iface] {
			continue
		}
		taken[m.Iface] = true
		j := Join{IXP: in.World.IXP(m.IXP).Name, Iface: m.Iface, ASN: m.ASN}
		if rng.Float64() < 0.8 {
			j.PortMbps = m.PortMbps
		}
		d.Joins = append(d.Joins, j)
	}
	// ... topped up with brand-new members on free LAN addresses,
	// walking each peering LAN from its top end (the generator
	// allocates from the bottom).
	if len(d.Joins) < nJoin {
		d.Joins = append(d.Joins, mintJoins(in, nJoin-len(d.Joins), taken, rng)...)
	}
	return d
}

// mintJoins fabricates n new memberships on unused peering-LAN
// addresses with fresh ASNs.
func mintJoins(in Inputs, n int, taken map[netip.Addr]bool, rng *rand.Rand) []Join {
	ds := in.Dataset
	used := make(map[netip.Addr]bool, len(in.World.Members))
	for _, m := range in.World.Members {
		used[m.Iface] = true
	}
	// Interfaces the dataset already knows are taken too — a member
	// minted by an earlier delta is not in the world's roster, and
	// re-minting its address would be an invalid duplicate join.
	for ip := range ds.IfaceIXP {
		used[ip] = true
	}
	var prefixes []netip.Prefix
	for p := range ds.PrefixIXP {
		if p.Addr().Is4() { // lastAddrIn walks IPv4 LANs only
			prefixes = append(prefixes, p)
		}
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Addr().Less(prefixes[j].Addr()) })

	var out []Join
	asn := netsim.ASN(900001 + rng.Intn(1000))
	for len(out) < n && len(prefixes) > 0 {
		minted := 0
		for _, p := range prefixes {
			ip := lastAddrIn(p)
			// Walk down from the top until a free address appears.
			for p.Contains(ip) {
				if !used[ip] && !taken[ip] {
					break
				}
				ip = ip.Prev()
			}
			if !p.Contains(ip) {
				continue
			}
			taken[ip] = true
			out = append(out, Join{IXP: ds.PrefixIXP[p], Iface: ip, ASN: asn, PortMbps: 1000})
			asn++
			minted++
			if len(out) >= n {
				break
			}
		}
		if minted == 0 {
			break // every LAN exhausted
		}
	}
	return out
}

// lastAddrIn returns the highest address of an IPv4 prefix.
func lastAddrIn(p netip.Prefix) netip.Addr {
	b := p.Addr().As4()
	bits := p.Bits()
	for i := 0; i < 32-bits; i++ {
		b[3-(i/8)] |= 1 << (i % 8)
	}
	return netip.AddrFrom4(b)
}

// InvertDelta builds the delta that undoes d against the pre-apply
// inputs: departed members re-join with their recorded AS, joined
// members leave. Port refreshes are not rolled back (real registries
// don't forget pricing rows either). Benchmarks alternate a delta with
// its inverse to apply churn indefinitely.
func InvertDelta(in Inputs, d Delta) Delta {
	ds := in.Dataset
	var inv Delta
	for _, k := range d.Leaves {
		inv.Joins = append(inv.Joins, Join{IXP: k.IXP, Iface: k.Iface, ASN: ds.IfaceASN[k.Iface]})
	}
	for _, j := range d.Joins {
		inv.Leaves = append(inv.Leaves, Key{IXP: j.IXP, Iface: j.Iface})
	}
	return inv
}
