package rpi

import "errors"

// Sentinel errors of the SDK. Wrapped errors carry detail; match with
// errors.Is.
var (
	// ErrMissingInput marks a New call without the required inputs.
	ErrMissingInput = errors.New("rpi: missing required input")
	// ErrBadDelta marks an Apply call whose delta failed validation;
	// the engine state is unchanged.
	ErrBadDelta = errors.New("rpi: invalid delta")
	// ErrUnknownIXP marks a query for an IXP the dataset doesn't know.
	ErrUnknownIXP = errors.New("rpi: unknown IXP")
	// ErrUnknownStep marks a RunStep call for a step that cannot run
	// in isolation.
	ErrUnknownStep = errors.New("rpi: unknown step")
	// ErrClosed marks an Apply on a closed engine.
	ErrClosed = errors.New("rpi: engine closed")
	// ErrWireVersion marks a wire payload with an unsupported schema
	// version.
	ErrWireVersion = errors.New("rpi: unsupported wire schema version")
)
