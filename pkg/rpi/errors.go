package rpi

import "errors"

// Sentinel errors of the SDK. Wrapped errors carry detail; match with
// errors.Is.
var (
	// ErrMissingInput marks a New call without the required inputs.
	ErrMissingInput = errors.New("rpi: missing required input")
	// ErrBadDelta marks an Apply call whose delta failed validation;
	// the engine state is unchanged.
	ErrBadDelta = errors.New("rpi: invalid delta")
	// ErrUnknownIXP marks a query for an IXP the dataset doesn't know.
	ErrUnknownIXP = errors.New("rpi: unknown IXP")
	// ErrUnknownStep marks a RunStep call for a step that cannot run
	// in isolation.
	ErrUnknownStep = errors.New("rpi: unknown step")
	// ErrClosed marks an Apply on a closed engine.
	ErrClosed = errors.New("rpi: engine closed")
	// ErrCanceled marks work abandoned because the caller's context was
	// canceled or timed out before the engine committed to it: the
	// engine state is unchanged, no delta was logged. Servers map it to
	// a client-disconnect status, not a server error.
	ErrCanceled = errors.New("rpi: request canceled")
	// ErrOverloaded marks work refused by admission control: the
	// serving plane is saturated and queuing longer would only grow
	// latency for everyone. Retry after a beat; the engine is healthy.
	ErrOverloaded = errors.New("rpi: overloaded")
	// ErrWireVersion marks a wire payload with an unsupported schema
	// version.
	ErrWireVersion = errors.New("rpi: unsupported wire schema version")
	// ErrPersistence marks a persistent engine whose write-ahead log
	// can no longer be appended to (disk failure, fsync error). The
	// engine keeps serving reads of its last state, but refuses further
	// Applies: acknowledging an unlogged delta would break the
	// recovered-state contract.
	ErrPersistence = errors.New("rpi: persistence failed")
	// ErrCorruptLog marks recovery finding silent corruption inside the
	// delta log (a checksummed record damaged with intact data after
	// it). The wrapped detail names the segment and byte offset.
	ErrCorruptLog = errors.New("rpi: corrupt delta log")
	// ErrBadSnapshot marks recovery finding no usable state where some
	// was expected, or snapshot columns inconsistent with the base.
	ErrBadSnapshot = errors.New("rpi: bad snapshot")
	// ErrBaseMismatch marks durable state whose fingerprint does not
	// match the base inputs offered to Open: the data directory belongs
	// to a different world (other seed, scale or campaign).
	ErrBaseMismatch = errors.New("rpi: data directory belongs to different base inputs")
)
