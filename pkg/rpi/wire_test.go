package rpi

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the wire-schema golden file")

// goldenIXP picks the IXP with the fewest memberships (ties broken by
// name) — a small, deterministic slice of the seed world.
func goldenIXP(rep *Report) string {
	counts := make(map[string]int)
	for k := range rep.Inferences {
		counts[k.IXP]++
	}
	best, bestN := "", -1
	for name, n := range counts {
		if bestN == -1 || n < bestN || (n == bestN && name < best) {
			best, bestN = name, n
		}
	}
	return best
}

// TestWireSchemaGolden pins the /v1 wire schema: marshalling a
// seed-world report must reproduce the committed golden byte for byte.
// Schema drift therefore fails CI until the golden is regenerated on
// purpose (go test ./pkg/rpi -run Golden -update) and the diff is
// reviewed — the API contract test for rpi-serve clients.
func TestWireSchemaGolden(t *testing.T) {
	eng, err := New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eng.ReportFor(context.Background(), goldenIXP(eng.Snapshot()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := MarshalReport(sub)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report_v1.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire schema drifted from golden (%d vs %d bytes); if intentional, bump "+
			"WireVersion and regenerate with -update", len(got), len(want))
	}
}

func TestWireRoundTrip(t *testing.T) {
	eng, err := New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalReport(eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	w, err := UnmarshalReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if w.Version != WireVersion || w.Summary.Total != len(eng.Snapshot().Inferences) {
		t.Fatalf("round trip lost data: %+v", w.Summary)
	}
	if w.Summary.Local+w.Summary.Remote+w.Summary.Unknown != w.Summary.Total {
		t.Fatal("summary counts inconsistent")
	}
}

func TestWireVersionRejected(t *testing.T) {
	if _, err := UnmarshalReport([]byte(`{"version": 99}`)); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("err = %v, want ErrWireVersion", err)
	}
	if _, err := UnmarshalReport([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
