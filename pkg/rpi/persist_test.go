package rpi

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log"
	"strings"
	"sync"
	"testing"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/wal"
)

// The crash tests run real engine histories over a TinyConfig world
// (~8 IXPs): every Open builds a full pipeline, so the world must be
// small enough to rebuild dozens of times in one test run.
var (
	tinyOnce sync.Once
	tinyIn   Inputs
	tinyErr  error
)

func tinyInputs(t testing.TB) Inputs {
	t.Helper()
	tinyOnce.Do(func() {
		tinyIn, tinyErr = syntheticInputs(netsim.TinyConfig(), 21)
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyIn
}

// history is a fixed delta sequence over the tiny world plus the
// golden report bytes at every sequence number: reports[k] is the
// MarshalReport output after the first k deltas. Every crash-recovery
// assertion reduces to "recovered seq s, recovered bytes ==
// reports[s]".
type history struct {
	deltas  []Delta
	reports [][]byte
}

var (
	histOnce sync.Once
	hist     *history
	histErr  error
)

const histLen = 4

func tinyHistory(t testing.TB) *history {
	t.Helper()
	in := tinyInputs(t)
	histOnce.Do(func() {
		histErr = func() error {
			eng, err := New(in)
			if err != nil {
				return err
			}
			defer eng.Close()
			h := &history{}
			rep, err := MarshalReport(eng.Snapshot())
			if err != nil {
				return err
			}
			h.reports = append(h.reports, rep)
			for k := 1; k <= histLen; k++ {
				d := ChurnDelta(eng.Inputs(), 0.05, int64(100+k))
				if k%2 == 0 {
					// Fold in a ping re-campaign so RTT overrides (and
					// their vantage-point references) cross the log too.
					pcfg := pingsim.DefaultCampaign()
					pcfg.Seed = int64(500 + k)
					d.Ping = pingsim.Overrides(pingsim.Run(in.World, in.Ping.VPs, pcfg))
				}
				if _, err := eng.Apply(context.Background(), d); err != nil {
					return err
				}
				h.deltas = append(h.deltas, d)
				if rep, err = MarshalReport(eng.Snapshot()); err != nil {
					return err
				}
				h.reports = append(h.reports, rep)
			}
			hist = h
			return nil
		}()
	})
	if histErr != nil {
		t.Fatal(histErr)
	}
	return hist
}

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func reportBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	b, err := MarshalReport(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOpenCloseReopen is the clean lifecycle: SIGTERM-style shutdown
// (Close publishes a final snapshot) followed by a restart that
// replays nothing and serves identical bytes.
func TestOpenCloseReopen(t *testing.T) {
	in := tinyInputs(t)
	h := tinyHistory(t)
	fsys := wal.NewMemFS()

	eng, info, err := Open("data", in, WithWALFS(fsys), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 0 || info.Replayed != 0 || info.SnapshotName != "" {
		t.Fatalf("fresh open recovered state: %+v", info)
	}
	for _, d := range h.deltas[:2] {
		if _, err := eng.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(reportBytes(t, eng), h.reports[2]) {
		t.Fatal("live report diverges from golden history")
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, info, err := Open("data", in, WithWALFS(fsys), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if info.SnapshotSeq != 2 || info.Replayed != 0 || info.TornTail {
		t.Fatalf("reopen after clean close should start from the final snapshot: %+v", info)
	}
	if re.Seq() != 2 {
		t.Fatalf("recovered seq = %d, want 2", re.Seq())
	}
	if !bytes.Equal(reportBytes(t, re), h.reports[2]) {
		t.Fatal("recovered report differs from pre-shutdown golden")
	}
	// The recovered engine is live: the rest of the history applies and
	// matches the goldens.
	for k, d := range h.deltas[2:] {
		if _, err := re.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reportBytes(t, re), h.reports[3+k]) {
			t.Fatalf("post-recovery apply %d diverges from golden", 3+k)
		}
	}
}

// TestCrashRecoveryMatrix kills the "machine" at every injectable
// filesystem operation across an engine lifetime — segment creation,
// record appends, fsyncs, snapshot publishes — then power-fails the
// disk (unsynced data lost) and recovers. The contract at every crash
// point: recovery succeeds, the recovered seq is the acknowledged
// prefix (or one more — a delta durably logged whose ack never
// returned), and the recovered report is byte-identical to the golden
// report at that seq.
func TestCrashRecoveryMatrix(t *testing.T) {
	in := tinyInputs(t)
	h := tinyHistory(t)
	for crashAt := 1; ; crashAt++ {
		fsys := wal.NewMemFS()
		fsys.InjectAt(crashAt, wal.Fault{Mode: wal.FaultCrash})

		acked := 0
		eng, _, err := Open("data", in, WithWALFS(fsys),
			WithLogger(quietLogger()), WithSnapshotEvery(2), WithSync(SyncEveryDelta))
		if err == nil {
			for _, d := range h.deltas {
				if _, aerr := eng.Apply(context.Background(), d); aerr != nil {
					if !errors.Is(aerr, ErrPersistence) {
						t.Fatalf("crash at op %d: apply failed with %v, want ErrPersistence", crashAt, aerr)
					}
					break
				}
				acked++
			}
		}
		crashed := fsys.Crashed()
		fsys.PowerFail(0)

		rec, info, rerr := Open("data", in, WithWALFS(fsys),
			WithLogger(quietLogger()), WithSnapshotEvery(2))
		if rerr != nil {
			t.Fatalf("crash at op %d (acked %d): recovery failed: %v", crashAt, acked, rerr)
		}
		seq := int(rec.Seq())
		if seq != acked && seq != acked+1 {
			t.Fatalf("crash at op %d: recovered seq %d, acked %d", crashAt, seq, acked)
		}
		if !bytes.Equal(reportBytes(t, rec), h.reports[seq]) {
			t.Fatalf("crash at op %d: recovered report differs from golden at seq %d", crashAt, seq)
		}
		if info.Seq != uint64(seq) {
			t.Fatalf("crash at op %d: info.Seq %d != engine seq %d", crashAt, info.Seq, seq)
		}
		rec.Close()

		if !crashed && err == nil && acked == len(h.deltas) {
			// The injection point lies beyond a full uncrashed lifetime:
			// the matrix is exhausted.
			break
		}
	}
}

// TestTornTailTruncated fabricates the signature of a crash
// mid-append — a frame that runs past the end of the segment — and
// expects recovery to truncate it with a warning, recovering every
// record before it.
func TestTornTailTruncated(t *testing.T) {
	in := tinyInputs(t)
	h := tinyHistory(t)
	fsys := wal.NewMemFS()
	eng, _, err := Open("data", in, WithWALFS(fsys),
		WithLogger(quietLogger()), WithSnapshotEvery(0)) // no snapshots: recovery must replay
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range h.deltas[:3] {
		if _, err := eng.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process was killed. Tear the tail by hand: a frame
	// header promising 64 bytes with only 3 present.
	seg := "data/" + wal.SegmentName(0)
	raw, ok := fsys.ReadFile(seg)
	if !ok {
		t.Fatalf("segment %s missing", seg)
	}
	torn := append(append([]byte{}, raw...), 64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3)
	fsys.WriteFile(seg, torn)

	var warnings strings.Builder
	rec, info, err := Open("data", in, WithWALFS(fsys),
		WithLogger(log.New(&warnings, "", 0)), WithSnapshotEvery(0))
	if err != nil {
		t.Fatalf("torn tail must not fail recovery: %v", err)
	}
	defer rec.Close()
	if !info.TornTail || info.TruncatedAt != int64(len(raw)) {
		t.Fatalf("recovery info = %+v, want torn tail truncated at %d", info, len(raw))
	}
	if !strings.Contains(warnings.String(), "truncating torn log tail") {
		t.Fatalf("no truncation warning logged; got %q", warnings.String())
	}
	if rec.Seq() != 3 || !bytes.Equal(reportBytes(t, rec), h.reports[3]) {
		t.Fatalf("recovered seq %d; records before the tear must survive", rec.Seq())
	}
	if got, _ := fsys.ReadFile(seg); len(got) != len(raw) {
		t.Fatalf("segment not truncated: %d bytes, want %d", len(got), len(raw))
	}
	// A second restart over the truncated log is a clean recovery.
	re2, info2, err := Open("data", in, WithWALFS(fsys),
		WithLogger(quietLogger()), WithSnapshotEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if info2.TornTail || re2.Seq() != 3 {
		t.Fatalf("second recovery not clean: %+v, seq %d", info2, re2.Seq())
	}
}

// TestInteriorCorruptionRefused damages a checksummed record that has
// intact records after it: recovery must refuse with ErrCorruptLog
// naming the offset, never silently skip.
func TestInteriorCorruptionRefused(t *testing.T) {
	in := tinyInputs(t)
	h := tinyHistory(t)
	fsys := wal.NewMemFS()
	eng, _, err := Open("data", in, WithWALFS(fsys),
		WithLogger(quietLogger()), WithSnapshotEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range h.deltas[:3] {
		if _, err := eng.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	// Find the second record's offset (header frame + record frames).
	seg := "data/" + wal.SegmentName(0)
	var offsets []int64
	if _, err := wal.Scan(fsys, seg, func(off int64, _ []byte) error {
		offsets = append(offsets, off)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 3 {
		t.Fatalf("expected 3 records, found %d", len(offsets))
	}
	raw, _ := fsys.ReadFile(seg)
	raw[offsets[1]+8] ^= 0xff // first payload byte of record 2
	fsys.WriteFile(seg, raw)

	_, _, err = Open("data", in, WithWALFS(fsys), WithLogger(quietLogger()))
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("err = %v, want ErrCorruptLog", err)
	}
	var ce *wal.CorruptError
	if !errors.As(err, &ce) || ce.Offset != offsets[1] {
		t.Fatalf("error does not carry the damage offset: %v", err)
	}
}

// TestOpenBaseMismatch: a data directory married to one world must
// refuse a different one instead of serving frankenstate.
func TestOpenBaseMismatch(t *testing.T) {
	in := tinyInputs(t)
	fsys := wal.NewMemFS()
	eng, _, err := Open("data", in, WithWALFS(fsys), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), ChurnDelta(eng.Inputs(), 0.05, 3)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	other, err := syntheticInputs(netsim.TinyConfig(), 22)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open("data", other, WithWALFS(fsys), WithLogger(quietLogger())); !errors.Is(err, ErrBaseMismatch) {
		t.Fatalf("err = %v, want ErrBaseMismatch", err)
	}
}

// TestReplayToAnyIndex re-drives the log to every historical sequence
// number and expects the golden report at each one (the cmd/rpi-replay
// code path).
func TestReplayToAnyIndex(t *testing.T) {
	in := tinyInputs(t)
	h := tinyHistory(t)
	fsys := wal.NewMemFS()
	eng, _, err := Open("data", in, WithWALFS(fsys),
		WithLogger(quietLogger()), WithSnapshotEvery(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range h.deltas {
		if _, err := eng.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= len(h.deltas); k++ {
		rep, info, err := Replay("data", in, uint64(k), WithWALFS(fsys), WithLogger(quietLogger()))
		if err != nil {
			t.Fatalf("replay to %d: %v", k, err)
		}
		if info.Seq != uint64(k) || rep.Seq() != uint64(k) {
			t.Fatalf("replay to %d landed at seq %d", k, rep.Seq())
		}
		if !bytes.Equal(reportBytes(t, rep), h.reports[k]) {
			t.Fatalf("replay to %d differs from golden", k)
		}
		rep.Close()
	}
}

// TestBrokenPersistenceFreezes: after an injected append failure the
// engine keeps serving reads but refuses further Applies, and the
// durable state recovers to exactly the acknowledged prefix.
func TestBrokenPersistenceFreezes(t *testing.T) {
	in := tinyInputs(t)
	h := tinyHistory(t)
	fsys := wal.NewMemFS()
	eng, _, err := Open("data", in, WithWALFS(fsys),
		WithLogger(quietLogger()), WithSnapshotEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), h.deltas[0]); err != nil {
		t.Fatal(err)
	}
	// Fail the next mutating op (the append's write) without crashing
	// the "machine": a local disk error, not a power cut.
	fsys.InjectAt(1, wal.Fault{Mode: wal.FaultError})
	if _, err := eng.Apply(context.Background(), h.deltas[1]); !errors.Is(err, ErrPersistence) {
		t.Fatalf("apply after disk error = %v, want ErrPersistence", err)
	}
	// Reads still serve the last good state; writes stay refused.
	if !bytes.Equal(reportBytes(t, eng), h.reports[1]) {
		t.Fatal("reads must keep serving after persistence breaks")
	}
	if _, err := eng.Apply(context.Background(), h.deltas[1]); !errors.Is(err, ErrPersistence) {
		t.Fatalf("engine must stay broken, got %v", err)
	}
	if err := eng.Checkpoint(); !errors.Is(err, ErrPersistence) {
		t.Fatalf("checkpoint on broken engine = %v, want ErrPersistence", err)
	}
	eng.Close()

	rec, _, err := Open("data", in, WithWALFS(fsys), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Seq() != 1 || !bytes.Equal(reportBytes(t, rec), h.reports[1]) {
		t.Fatalf("recovered seq %d, want the acknowledged prefix 1", rec.Seq())
	}
}

// TestCheckpointRotates: an explicit checkpoint publishes a snapshot
// and rotates the log, so the next recovery replays nothing.
func TestCheckpointRotates(t *testing.T) {
	in := tinyInputs(t)
	h := tinyHistory(t)
	fsys := wal.NewMemFS()
	eng, _, err := Open("data", in, WithWALFS(fsys),
		WithLogger(quietLogger()), WithSnapshotEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range h.deltas[:2] {
		if _, err := eng.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err) // idempotent at the same seq
	}
	_ = eng // killed without Close: recovery must come entirely from the checkpoint
	rec, info, err := Open("data", in, WithWALFS(fsys), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if info.SnapshotSeq != 2 || info.Replayed != 0 {
		t.Fatalf("recovery after checkpoint: %+v, want snapshot seq 2, replay 0", info)
	}
	if !bytes.Equal(reportBytes(t, rec), h.reports[2]) {
		t.Fatal("checkpoint-recovered report differs from golden")
	}
}

// TestSubscribeDropCount pins the slow-consumer contract: a
// subscriber with buffer 1 that never reads keeps only the newest
// update, and every shed update is counted.
func TestSubscribeDropCount(t *testing.T) {
	in := tinyInputs(t)
	h := tinyHistory(t)
	eng, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ch, cancel := eng.Subscribe(1)
	defer cancel()
	for _, d := range h.deltas[:3] {
		if _, err := eng.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.DroppedUpdates(); got != 2 {
		t.Fatalf("DroppedUpdates = %d, want 2 (three updates through a 1-buffer)", got)
	}
	up := <-ch
	if up.Seq != 3 {
		t.Fatalf("survivor update has seq %d, want the newest (3)", up.Seq)
	}
}
