// Package rpi is the public SDK of the remote peering inference
// system: the stable, importable surface over the five-step
// methodology of internal/core.
//
// The central type is the Engine, a long-lived inference instance.
// Where the internal pipeline is built for frozen inputs and one-shot
// batch runs, the engine is built for the world as it actually
// behaves: IXP memberships churn, ping campaigns refresh, and
// consumers want the current verdicts — not a rebuild-from-scratch
// every time a member joins. New assembles the shared inference
// substrate once; Apply absorbs world deltas incrementally
// (invalidating only the state a delta can reach); Snapshot returns
// the current report; Subscribe streams per-membership verdict changes
// as deltas land.
//
//	eng, err := rpi.New(inputs, rpi.WithWorkers(8))
//	...
//	rep := eng.Snapshot()
//	updates, cancel := eng.Subscribe(16)
//	res, err := eng.Apply(ctx, delta)
//
// Reports cross process boundaries through the versioned JSON wire
// schema (MarshalReport / UnmarshalReport); cmd/rpi-serve serves it
// over HTTP from one shared engine.
package rpi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/netip"
	"sort"
	"sync"

	"rpeer/internal/core"
	"rpeer/internal/pingsim"
)

// Engine is a long-lived inference instance over one evolving input
// world. All methods are safe for concurrent use: queries share a read
// lock, Apply takes the write lock.
type Engine struct {
	mu     sync.RWMutex
	ctx    *core.Context
	cfg    config
	report *core.Report
	// baseline caches the threshold-baseline report; Apply drops it
	// (RTT and membership deltas both move it).
	baseline *core.Report
	seq      uint64
	// pers is the durable half of a persistent engine (Open); nil for
	// the in-memory engines New and Replay build.
	pers *persister

	subMu   sync.Mutex
	subs    map[int]chan Update
	nextSub int
	closed  bool
	// dropped counts updates shed from slow subscribers (see
	// Subscribe); guarded by subMu.
	dropped uint64
}

// New validates the inputs, builds the shared inference substrate and
// runs the configured pipeline once. The engine takes ownership of the
// registry dataset via a private clone — the caller's Inputs stay
// frozen no matter how many deltas are applied later.
func New(in Inputs, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if in.World == nil || in.Dataset == nil || in.Colo == nil {
		return nil, fmt.Errorf("%w: World, Dataset and Colo are required", ErrMissingInput)
	}
	in.Dataset = in.Dataset.Clone()
	ctx, err := core.NewContext(in)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMissingInput, err)
	}
	return buildEngine(ctx, cfg)
}

// buildEngine finishes engine construction over a ready (possibly
// recovered) context: the initial pipeline run and baseline scan,
// overlapped (both only read the shared context).
func buildEngine(ctx *core.Context, cfg config) (*Engine, error) {
	e := &Engine{ctx: ctx, cfg: cfg, subs: make(map[int]chan Update)}
	var (
		wg      sync.WaitGroup
		base    *core.Report
		baseErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		base, baseErr = ctx.Baseline(cfg.threshold)
	}()
	rep, err := e.run()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	if baseErr != nil {
		return nil, baseErr
	}
	e.report, e.baseline = rep, base
	return e, nil
}

// run executes the configured pipeline over the warm context. Callers
// hold at least a read lock (core.Context runs are concurrency-safe).
func (e *Engine) run() (*core.Report, error) {
	if e.cfg.order != nil {
		return e.ctx.RunWithOrder(e.cfg.opt, e.cfg.order)
	}
	return e.ctx.Run(e.cfg.opt)
}

// Snapshot returns the current report. The report is shared and must
// be treated as read-only; it stays internally consistent forever (an
// Apply swaps in a fresh report rather than mutating the old one).
func (e *Engine) Snapshot() *Report {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.report
}

// SnapshotSeq returns the current report together with the delta
// sequence it reflects, read under one lock acquisition: the pair is
// coherent even while concurrent Applies land. Serving-plane caches
// key pre-marshaled report bytes on this seq.
func (e *Engine) SnapshotSeq() (*Report, uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.report, e.seq
}

// Seq returns the number of deltas applied so far.
func (e *Engine) Seq() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.seq
}

// Inputs returns the engine's current view of the inputs: the dataset
// clone with all applied membership churn, and the campaign with all
// applied overrides. Building a cold engine over these inputs yields a
// byte-identical report (the incremental-update contract).
//
// The returned maps are the engine's live state and must be treated
// as strictly read-only: writing to them bypasses Apply's validation
// (and the invariants the incremental path depends on), and a later
// Apply mutates them underneath the caller. All change goes through
// Apply.
func (e *Engine) Inputs() Inputs {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ctx.Inputs()
}

// Context exposes the underlying core context for in-module consumers
// (the experiment harness, benchmarks). SDK users should not need it.
func (e *Engine) Context() *core.Context {
	return e.ctx
}

// Baseline returns the Castro et al. RTT-threshold baseline over the
// shared substrate at the configured threshold (WithThreshold),
// cached until the next Apply. The report is shared and read-only.
func (e *Engine) Baseline() (*Report, error) {
	for {
		e.mu.RLock()
		if b := e.baseline; b != nil {
			e.mu.RUnlock()
			return b, nil
		}
		seq := e.seq
		base, err := e.ctx.Baseline(e.cfg.threshold)
		e.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		if e.seq == seq {
			// A concurrent identical recompute may have stored first;
			// keep one instance.
			if e.baseline == nil {
				e.baseline = base
			}
			base = e.baseline
			e.mu.Unlock()
			return base, nil
		}
		// An Apply landed mid-compute: the report reflects the old
		// world; recompute rather than caching stale state.
		e.mu.Unlock()
	}
}

// RunStep evaluates one methodology step in isolation over the shared
// substrate (the per-step rows of the paper's Table 4).
func (e *Engine) RunStep(s Step) (*Report, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rep, err := e.ctx.RunStep(e.cfg.opt, s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnknownStep, err)
	}
	return rep, nil
}

// ReportFor returns the current verdicts of one IXP. The returned
// report shares inference values with the snapshot and must be treated
// as read-only. The walk over a large snapshot honors ctx: a canceled
// caller gets ErrCanceled instead of the rest of the scan.
func (e *Engine) ReportFor(ctx context.Context, ixp string) (*Report, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if !e.ctx.HasIXP(ixp) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIXP, ixp)
	}
	out := &Report{Inferences: make(map[Key]*Inference)}
	scanned := 0
	for k, inf := range e.report.Inferences {
		if scanned++; scanned&0x3fff == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		if k.IXP == ixp {
			out.Inferences[k] = inf
		}
	}
	for _, r := range e.report.MultiRouters {
		for _, name := range r.IXPs {
			if name == ixp {
				out.MultiRouters = append(out.MultiRouters, r)
				break
			}
		}
	}
	return out, nil
}

// ctxErr converts a context cancellation into the SDK's typed error.
// A nil context means "no deadline" (package-internal callers only;
// the public methods always receive one).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	return nil
}

// Apply absorbs a world delta — membership joins and leaves, refreshed
// RTT aggregates — into the engine: the affected substrate is patched
// in place (see core.Context.Apply for the invalidation rules), the
// pipeline re-runs over the warm context, and the per-membership
// verdict changes are returned and fanned out to subscribers.
//
// The resulting report is byte-identical (under MarshalReport) to what
// a cold New over the post-delta Inputs would produce, at a fraction
// of the cost: the corpus scan, campaign fold, geometry and memo
// warm-up are not repeated.
//
// ctx bounds the commitment point, not the mutation: a caller that is
// already gone when the write lock is finally acquired gets ErrCanceled
// and the engine state (memory and log) is untouched — the 30ms–500ms
// re-inference is never started for a dead request. Once the delta is
// journaled the apply runs to completion regardless of ctx, because a
// logged delta must be reflected in memory (the durability contract of
// persist.go).
func (e *Engine) Apply(ctx context.Context, d Delta) (*Update, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if e.isClosed() {
		return nil, ErrClosed
	}
	if d.Empty() {
		// Nothing to absorb: skip the re-run, keep the sequence.
		return &Update{Seq: e.seq}, nil
	}
	d, err := e.resolveVPs(d)
	if err != nil {
		return nil, err
	}
	if e.pers != nil {
		// Validate → log → mutate: logDelta re-validates the resolved
		// delta (so the record it journals is guaranteed to apply on
		// replay) and appends it under the configured fsync policy. If
		// the append fails, nothing was mutated and persistence is
		// declared broken — the durable state stays the acknowledged
		// prefix.
		if err := e.logDelta(d); err != nil {
			return nil, err
		}
	}
	if e.cfg.applyHook != nil {
		// Fault-injection seam (WithApplyHook): runs at the riskiest
		// point of the lifecycle — delta journaled, memory not yet
		// mutated — so a hook-raised panic models an engine bug whose
		// delta is already durable.
		e.cfg.applyHook(e.seq+1, d)
	}
	if err := e.ctx.Apply(core.Delta(d)); err != nil {
		if e.pers != nil {
			// Validated, logged, yet failed to apply: a bug, but the
			// log now disagrees with memory — freeze the durable state.
			e.pers.broken = fmt.Errorf("delta %d logged but failed to apply: %v", e.seq+1, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	rep, err := e.run()
	if err != nil {
		return nil, err
	}
	old := e.report
	e.report = rep
	e.baseline = nil
	e.seq++
	e.maybeSnapshot()
	up := diffReports(e.seq, old, rep)
	up.Joined, up.Left, up.RTTRefreshed = len(d.Joins), len(d.Leaves), len(d.Ping)
	e.publish(*up)
	return up, nil
}

// resolveVPs fills measured RTT overrides that carry no vantage point
// with the interface's current best VP. Resolution happens here, under
// the apply lock, so a concurrent apply cannot slip between "read the
// current VP" and "apply the override" (which could resurrect a
// just-revoked measurement with a stale vantage point). The caller's
// delta is not mutated.
func (e *Engine) resolveVPs(d Delta) (Delta, error) {
	needs := false
	for _, ov := range d.Ping {
		if ov.BestVP == nil && !math.IsNaN(ov.RTTMinMs) {
			needs = true
			break
		}
	}
	if !needs {
		return d, nil
	}
	resolved := make(map[netip.Addr]pingsim.Override, len(d.Ping))
	for ip, ov := range d.Ping {
		if ov.BestVP == nil && !math.IsNaN(ov.RTTMinMs) {
			// The context's per-interface index already reflects every
			// applied delta; an O(1) lookup, not a campaign re-fold.
			vp, ok := e.ctx.BestVP(ip)
			if !ok {
				return d, fmt.Errorf("%w: %s has no current vantage point; name one", ErrBadDelta, ip)
			}
			ov.BestVP = vp
		}
		resolved[ip] = ov
	}
	d.Ping = resolved
	return d, nil
}

// Subscribe registers a verdict-change listener. Every Apply delivers
// one Update; a subscriber that falls more than buf updates behind has
// the oldest pending updates dropped (the engine never blocks on a
// slow consumer).
//
// Drop semantics: shedding is per-subscriber and oldest-first — a slow
// consumer loses the earliest updates it had not read, and always
// receives the most recent one. A consumer that must not miss changes
// should either size buf for its worst-case lag or treat any gap in
// Update.Seq as a signal to resynchronize from Snapshot(). Every shed
// update increments the engine-wide counter behind DroppedUpdates
// (exported as the rpi.dropped_updates expvar by cmd/rpi-serve).
//
// The returned cancel function unregisters and closes the channel; it
// is safe to call more than once.
func (e *Engine) Subscribe(buf int) (<-chan Update, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Update, buf)
	e.subMu.Lock()
	defer e.subMu.Unlock()
	if e.closed {
		close(ch)
		return ch, func() {}
	}
	id := e.nextSub
	e.nextSub++
	e.subs[id] = ch
	return ch, func() {
		e.subMu.Lock()
		defer e.subMu.Unlock()
		if c, ok := e.subs[id]; ok {
			delete(e.subs, id)
			close(c)
		}
	}
}

// Close shuts the engine down: subscriber channels are closed and
// further Apply calls fail with ErrClosed. Queries keep serving the
// last snapshot. A persistent engine publishes a final snapshot (so
// the next Open replays nothing) and syncs and closes its log; the
// returned error reports any failure to do so — the log itself is
// still intact, so recovery replays the tail instead.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.subMu.Lock()
	alreadyClosed := e.closed
	e.closed = true
	for id, ch := range e.subs {
		delete(e.subs, id)
		close(ch)
	}
	e.subMu.Unlock()
	if alreadyClosed || e.pers == nil {
		return nil
	}
	var err error
	if e.pers.broken == nil && e.pers.lastSnap != e.seq {
		err = e.snapshotLocked(false)
	}
	if cerr := e.pers.w.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("%w: close log: %v", ErrPersistence, cerr)
	}
	return err
}

// Abandon kills the engine after an internal fault without trusting
// any of its in-memory state: no final snapshot is published (the
// columns may be half-mutated by the panicking Apply), the write-ahead
// log is closed so a successor engine can recover the directory, every
// subscriber channel closes, and all further Applies fail with
// ErrClosed. Queries keep serving the last published report — by
// construction the report pointer is only ever swapped after a fully
// successful apply, so it is the last good state. This is the
// quarantine path of internal/supervisor; orderly shutdown wants Close.
func (e *Engine) Abandon() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.subMu.Lock()
	already := e.closed
	e.closed = true
	for id, ch := range e.subs {
		delete(e.subs, id)
		close(ch)
	}
	e.subMu.Unlock()
	if already || e.pers == nil {
		return
	}
	if e.pers.broken == nil {
		e.pers.broken = errors.New("engine abandoned after internal fault")
	}
	// Best-effort close; the durable state is whatever the log already
	// acknowledged, and recovery truncates any torn tail.
	_ = e.pers.w.Close()
}

// DroppedUpdates returns the total number of updates shed from slow
// subscribers since the engine started (see Subscribe).
func (e *Engine) DroppedUpdates() uint64 {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	return e.dropped
}

func (e *Engine) isClosed() bool {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	return e.closed
}

// publish fans an update out without ever blocking: a full subscriber
// buffer sheds its oldest update first.
func (e *Engine) publish(up Update) {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	for _, ch := range e.subs {
		for {
			select {
			case ch <- up:
			default:
				select {
				case <-ch: // shed the oldest pending update
					e.dropped++
				default:
				}
				continue
			}
			break
		}
	}
}

// VerdictChange is one membership whose verdict moved under a delta.
type VerdictChange struct {
	IXP   string `json:"ixp"`
	Iface string `json:"iface"`
	From  string `json:"from"`
	To    string `json:"to"`
	// FromStep and ToStep attribute the verdicts to pipeline steps.
	FromStep string `json:"from_step,omitempty"`
	ToStep   string `json:"to_step,omitempty"`
	// Added and Removed mark memberships that entered or departed the
	// inference domain with this delta.
	Added   bool `json:"added,omitempty"`
	Removed bool `json:"removed,omitempty"`
}

// Update summarises one applied delta.
type Update struct {
	// Seq is the engine's delta sequence number after this apply.
	Seq uint64 `json:"seq"`
	// Joined, Left and RTTRefreshed echo the delta's shape.
	Joined       int `json:"joined"`
	Left         int `json:"left"`
	RTTRefreshed int `json:"rtt_refreshed"`
	// Changes lists every membership whose verdict differs from the
	// previous snapshot, ordered by (IXP, interface).
	Changes []VerdictChange `json:"changes"`
}

// diffReports lists the verdict changes between two snapshots.
func diffReports(seq uint64, old, new *core.Report) *Update {
	up := &Update{Seq: seq}
	for k, o := range old.Inferences {
		n, ok := new.Inferences[k]
		if !ok {
			up.Changes = append(up.Changes, VerdictChange{
				IXP: k.IXP, Iface: k.Iface.String(),
				From: o.Class.String(), FromStep: stepName(o.Step),
				To: core.ClassUnknown.String(), Removed: true,
			})
			continue
		}
		if o.Class != n.Class || o.Step != n.Step {
			up.Changes = append(up.Changes, VerdictChange{
				IXP: k.IXP, Iface: k.Iface.String(),
				From: o.Class.String(), FromStep: stepName(o.Step),
				To: n.Class.String(), ToStep: stepName(n.Step),
			})
		}
	}
	for k, n := range new.Inferences {
		if _, ok := old.Inferences[k]; !ok {
			up.Changes = append(up.Changes, VerdictChange{
				IXP: k.IXP, Iface: k.Iface.String(),
				From: core.ClassUnknown.String(),
				To:   n.Class.String(), ToStep: stepName(n.Step),
				Added: true,
			})
		}
	}
	sort.Slice(up.Changes, func(i, j int) bool {
		if up.Changes[i].IXP != up.Changes[j].IXP {
			return up.Changes[i].IXP < up.Changes[j].IXP
		}
		return up.Changes[i].Iface < up.Changes[j].Iface
	})
	return up
}

// stepName renders a step for the wire, with "none" elided.
func stepName(s Step) string {
	if s == core.StepNone {
		return ""
	}
	return s.String()
}
