module rpeer

go 1.24
