// Package rpeer holds the repository-level benchmark harness: one
// benchmark per table and figure of the paper's evaluation (each
// regenerates the artefact from the shared experiment environment and
// reports the headline metric), plus the design-choice ablations
// called out in DESIGN.md section 6.
//
// Run with:
//
//	go test -bench=. -benchmem
package rpeer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpeer/internal/admission"
	"rpeer/internal/alias"
	"rpeer/internal/core"
	"rpeer/internal/exp"
	"rpeer/internal/host"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/supervisor"
	"rpeer/internal/tracesim"
	"rpeer/internal/wal"
	"rpeer/internal/worldfile"
	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"
)

var (
	benchOnce  sync.Once
	benchedEnv *exp.Env
	benchErr   error
	sink       interface{}
)

func benchEnv(b *testing.B) *exp.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchedEnv, benchErr = exp.NewEnv(1)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchedEnv
}

// run executes one experiment constructor per iteration.
func run(b *testing.B, f func(*exp.Env) exp.Result) {
	e := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	var r exp.Result
	for i := 0; i < b.N; i++ {
		r = f(e)
	}
	sink = r
}

// ---------------------------------------------------------------------------
// Tables

func BenchmarkTable1DatasetMerge(b *testing.B) { run(b, exp.Table1) }
func BenchmarkTable2Validation(b *testing.B)   { run(b, exp.Table2) }
func BenchmarkTable5PingCampaign(b *testing.B) { run(b, exp.Table5) }

func BenchmarkTable4StepValidation(b *testing.B) {
	e := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		sink = exp.Table4(e)
		m = core.Evaluate(e.Report, e.TestSubset())
	}
	b.ReportMetric(100*m.ACC, "ACC%")
	b.ReportMetric(100*m.COV, "COV%")
	b.ReportMetric(100*m.PRE, "PRE%")
}

// ---------------------------------------------------------------------------
// Figures

func BenchmarkFig1aFacilityDistribution(b *testing.B) { run(b, exp.Fig1a) }
func BenchmarkFig1bControlRTTECDF(b *testing.B)       { run(b, exp.Fig1b) }
func BenchmarkFig2aWideAreaRTTMatrix(b *testing.B)    { run(b, exp.Fig2a) }
func BenchmarkFig2bWideAreaPrevalence(b *testing.B)   { run(b, exp.Fig2b) }
func BenchmarkFig4PortCapacities(b *testing.B)        { run(b, exp.Fig4) }
func BenchmarkFig5FacilityPresence(b *testing.B)      { run(b, exp.Fig5) }
func BenchmarkFig6SpeedFit(b *testing.B)              { run(b, exp.Fig6) }
func BenchmarkFig8PerIXPValidation(b *testing.B)      { run(b, exp.Fig8) }
func BenchmarkFig9aResponseRates(b *testing.B)        { run(b, exp.Fig9a) }
func BenchmarkFig9bRTTECDF(b *testing.B)              { run(b, exp.Fig9b) }
func BenchmarkFig9cFeasibleFacilities(b *testing.B)   { run(b, exp.Fig9c) }
func BenchmarkFig9dMultiIXPRouters(b *testing.B)      { run(b, exp.Fig9d) }
func BenchmarkFig10aStepContribution(b *testing.B)    { run(b, exp.Fig10a) }
func BenchmarkFig10bInferenceShares(b *testing.B)     { run(b, exp.Fig10b) }
func BenchmarkFig11aCustomerCones(b *testing.B)       { run(b, exp.Fig11a) }
func BenchmarkFig11bTrafficLevels(b *testing.B)       { run(b, exp.Fig11b) }
func BenchmarkFig12aGrowth(b *testing.B)              { run(b, exp.Fig12a) }
func BenchmarkFig12bPingVsTraceroute(b *testing.B)    { run(b, exp.Fig12b) }
func BenchmarkSec64RoutingImplications(b *testing.B)  { run(b, exp.Sec64) }

// ---------------------------------------------------------------------------
// End-to-end pipeline stages

func BenchmarkWorldGeneration(b *testing.B) {
	cfg := netsim.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := netsim.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sink = w
	}
}

func BenchmarkPingCampaign(b *testing.B) {
	e := benchEnv(b)
	cfg := pingsim.DefaultCampaign()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = pingsim.Run(e.World, e.VPs, cfg)
	}
}

func BenchmarkTracerouteCorpus(b *testing.B) {
	e := benchEnv(b)
	cfg := tracesim.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = tracesim.Generate(e.World, cfg)
	}
}

func BenchmarkFullPipeline(b *testing.B) {
	e := benchEnv(b)
	opt := core.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Ctx.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		sink = rep
	}
}

// BenchmarkFullPipelineCold measures the pre-Context path: every
// iteration rebuilds the full inference substrate (RTT indexes, IP
// map, traceroute detections, geo rings, alias clusters) from scratch.
func BenchmarkFullPipelineCold(b *testing.B) {
	e := benchEnv(b)
	opt := core.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Run(e.Inputs, opt)
		if err != nil {
			b.Fatal(err)
		}
		sink = rep
	}
}

// BenchmarkContextBuild prices the one-off substrate construction the
// shared runs amortise.
func BenchmarkContextBuild(b *testing.B) {
	e := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := core.NewContext(e.Inputs)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 6)

// ablate runs the pipeline under modified options and reports accuracy
// and coverage against the test subset.
func ablate(b *testing.B, opt core.Options) {
	e := benchEnv(b)
	test := e.TestSubset()
	b.ResetTimer()
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		rep, err := e.Ctx.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		m = core.Evaluate(rep, test)
		sink = rep
	}
	b.ReportMetric(100*m.ACC, "ACC%")
	b.ReportMetric(100*m.COV, "COV%")
	b.ReportMetric(100*m.FPR, "FPR%")
}

func BenchmarkAblationBaselinePipeline(b *testing.B) {
	ablate(b, core.DefaultOptions())
}

func BenchmarkAblationNoVmin(b *testing.B) {
	opt := core.DefaultOptions()
	opt.DisableVminBound = true
	ablate(b, opt)
}

func BenchmarkAblationAliasCoverageMode(b *testing.B) {
	opt := core.DefaultOptions()
	opt.AliasMode = alias.ModeCoverage
	ablate(b, opt)
}

func BenchmarkAblationNoPortCapacity(b *testing.B) {
	opt := core.DefaultOptions()
	opt.EnablePortCapacity = false
	ablate(b, opt)
}

func BenchmarkAblationNoPrivateLinks(b *testing.B) {
	opt := core.DefaultOptions()
	opt.EnablePrivate = false
	ablate(b, opt)
}

func BenchmarkAblationStepOrder(b *testing.B) {
	// RTT+colo before port capacity: the paper argues port capacity
	// must run first because it is the more reliable signal for
	// colocated reseller customers.
	e := benchEnv(b)
	test := e.TestSubset()
	order := []core.Step{core.StepRTTColo, core.StepPortCapacity, core.StepMultiIXP, core.StepPrivate}
	b.ResetTimer()
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		rep, err := e.Ctx.RunWithOrder(core.DefaultOptions(), order)
		if err != nil {
			b.Fatal(err)
		}
		m = core.Evaluate(rep, test)
		sink = rep
	}
	b.ReportMetric(100*m.ACC, "ACC%")
	b.ReportMetric(100*m.FNR, "FNR%")
}

func BenchmarkAblationNoTTLFilters(b *testing.B) {
	e := benchEnv(b)
	test := e.TestSubset()
	cfg := pingsim.DefaultCampaign()
	cfg.Seed = 5
	cfg.DisableTTLFilters = true
	ping := pingsim.Run(e.World, e.VPs, cfg)
	in := e.Inputs
	in.Ping = ping
	ctx, err := core.NewContext(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		rep, err := ctx.Run(core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		m = core.Evaluate(rep, test)
		sink = rep
	}
	b.ReportMetric(100*m.ACC, "ACC%")
	b.ReportMetric(100*m.FPR, "FPR%")
}

func BenchmarkAblationBaselineThreshold(b *testing.B) {
	e := benchEnv(b)
	test := e.TestSubset()
	for _, th := range []float64{2, 5, 10, 20} {
		th := th
		b.Run(thName(th), func(b *testing.B) {
			var m core.Metrics
			for i := 0; i < b.N; i++ {
				rep, err := e.Ctx.Baseline(th)
				if err != nil {
					b.Fatal(err)
				}
				m = core.Evaluate(rep, test)
				sink = rep
			}
			b.ReportMetric(100*m.ACC, "ACC%")
			b.ReportMetric(100*m.FPR, "FPR%")
			b.ReportMetric(100*m.FNR, "FNR%")
		})
	}
}

func thName(th float64) string {
	switch th {
	case 2:
		return "2ms"
	case 5:
		return "5ms"
	case 10:
		return "10ms"
	default:
		return "20ms"
	}
}

func BenchmarkExtensionBeyondPings(b *testing.B) {
	opt := core.DefaultOptions()
	opt.UseTracerouteRTT = true
	ablate(b, opt)
}

func BenchmarkExtensionLongitudinal(b *testing.B) {
	run(b, exp.Sec8Longitudinal)
}

func BenchmarkWorldSaveLoad(b *testing.B) {
	e := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.World.Save(&buf); err != nil {
			b.Fatal(err)
		}
		w, err := netsim.Load(&buf)
		if err != nil {
			b.Fatal(err)
		}
		sink = w
	}
}

func BenchmarkParallelPingCampaign(b *testing.B) {
	e := benchEnv(b)
	cfg := pingsim.DefaultCampaign()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = pingsim.RunParallel(e.World, e.VPs, cfg, 0)
	}
}

func BenchmarkSec7Resilience(b *testing.B) {
	run(b, exp.Sec7)
}

// ---------------------------------------------------------------------------
// Whole-suite regeneration: all 26 artefacts, serial vs worker pool.

func BenchmarkAllArtefactsSerial(b *testing.B) {
	e := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = exp.AllSerial(e)
	}
}

func BenchmarkAllArtefactsParallel(b *testing.B) {
	e := benchEnv(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = exp.All(e)
	}
}

// ---------------------------------------------------------------------------
// Scaling suite: the same measurements at growing world sizes
// (netsim.ScaledConfig presets), so BENCH_*.json tracks how the system
// scales with the world — not just how fast the default world runs.
// Every sub-benchmark reports the domain size (inferences/op), making
// the growth curve visible next to the timings.

var (
	scaleMu   sync.Mutex
	scaleEnvs = map[int]*exp.Env{}
)

func benchScaledEnv(b *testing.B, factor int) *exp.Env {
	b.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	e, ok := scaleEnvs[factor]
	if !ok {
		var err error
		e, err = exp.NewEnvWithConfig(netsim.ScaledConfig(factor), 1)
		if err != nil {
			b.Fatal(err)
		}
		scaleEnvs[factor] = e
	}
	return e
}

// ---------------------------------------------------------------------------
// Engine: incremental re-inference vs full rebuild, and the HTTP front
// end (PR 3). The incremental/rebuild pair is the headline claim of
// the engine API: absorbing a 1% membership churn through
// Engine.Apply must beat building a cold engine over the post-delta
// inputs by a wide margin, because only the membership-dependent
// substrate is re-derived.

func BenchmarkEngineApply(b *testing.B) {
	for _, factor := range []int{1, 4, 16} {
		factor := factor
		b.Run(fmt.Sprintf("%dx", factor), func(b *testing.B) {
			e := benchScaledEnv(b, factor)
			b.Run("incremental", func(b *testing.B) {
				eng, err := rpi.New(e.Inputs)
				if err != nil {
					b.Fatal(err)
				}
				fwd := rpi.ChurnDelta(eng.Inputs(), 0.01, 97)
				rev := rpi.InvertDelta(eng.Inputs(), fwd)
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d := fwd
					if i%2 == 1 {
						d = rev
					}
					up, err := eng.Apply(context.Background(), d)
					if err != nil {
						b.Fatal(err)
					}
					sink = up
				}
				b.ReportMetric(float64(len(eng.Snapshot().Inferences)), "inferences/op")
				b.ReportMetric(float64(len(fwd.Joins)+len(fwd.Leaves)), "churn/op")
			})
			b.Run("rebuild", func(b *testing.B) {
				eng, err := rpi.New(e.Inputs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Apply(context.Background(), rpi.ChurnDelta(eng.Inputs(), 0.01, 97)); err != nil {
					b.Fatal(err)
				}
				post := eng.Inputs() // the post-delta world a cold engine must ingest
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cold, err := rpi.New(post)
					if err != nil {
						b.Fatal(err)
					}
					sink = cold.Snapshot()
				}
				b.ReportMetric(float64(len(eng.Snapshot().Inferences)), "inferences/op")
			})
		})
	}
}

// BenchmarkServeHTTP drives the rpi-serve handler through a real HTTP
// stack (httptest): snapshot serving, per-IXP reports, and applies.
func BenchmarkServeHTTP(b *testing.B) {
	e := benchEnv(b)
	eng, err := rpi.New(e.Inputs)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(serve.New(eng))
	defer srv.Close()
	client := srv.Client()

	get := func(b *testing.B, url string) int {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		return int(n)
	}

	b.Run("infer", func(b *testing.B) {
		b.ReportAllocs()
		n := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n = get(b, srv.URL+"/v1/infer")
		}
		b.SetBytes(int64(n))
	})
	b.Run("report-ixp", func(b *testing.B) {
		ixp := e.StudiedIXPs(1)[0].Name
		b.ReportAllocs()
		n := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n = get(b, srv.URL+"/v1/report/"+ixp)
		}
		b.SetBytes(int64(n))
	})
	b.Run("apply", func(b *testing.B) {
		fwd := rpi.ChurnDelta(eng.Inputs(), 0.01, 53)
		rev := rpi.InvertDelta(eng.Inputs(), fwd)
		bodies := [2][]byte{wireDeltaBody(b, fwd), wireDeltaBody(b, rev)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(srv.URL+"/v1/apply", "application/json",
				bytes.NewReader(bodies[i%2]))
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("apply: %d", resp.StatusCode)
			}
		}
	})
}

// BenchmarkServeOverload prices the admission valve under saturation:
// each iteration fires a burst of concurrent full-report reads at a
// server whose Read class is deliberately tiny (2 slots, 2 queued,
// 2ms max wait), so most of the burst must be shed with a fast 503
// while the admitted requests keep their latency bounded. The two
// reported metrics are the serving-plane SLO pair: shed% (how much of
// the burst was refused — high is correct here, the valve working)
// and p99-ms (tail latency of the admitted reads — the number the
// valve exists to protect).
func BenchmarkServeOverload(b *testing.B) {
	const burst = 64
	e := benchEnv(b)
	eng, err := rpi.New(e.Inputs)
	if err != nil {
		b.Fatal(err)
	}
	quiet := log.New(io.Discard, "", 0)
	g := supervisor.New(supervisor.Options{Logger: quiet})
	g.Publish(eng)
	front := serve.NewSupervised(g, serve.Config{
		Admission: admission.Config{
			Read: admission.Limits{Slots: 2, Queue: 2, MaxWait: 2 * time.Millisecond},
		},
		Logger: quiet,
	})
	srv := httptest.NewServer(front)
	defer srv.Close()
	client := srv.Client()

	var (
		mu       sync.Mutex
		lat      []time.Duration
		admitted atomic.Uint64
		shed     atomic.Uint64
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < burst; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				resp, err := client.Get(srv.URL + "/v1/infer")
				if err != nil {
					b.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					d := time.Since(start)
					admitted.Add(1)
					mu.Lock()
					lat = append(lat, d)
					mu.Unlock()
				case http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						b.Error("shed response missing Retry-After")
					}
					shed.Add(1)
				default:
					b.Errorf("unexpected status %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	total := admitted.Load() + shed.Load()
	if total == 0 {
		b.Fatal("no requests completed")
	}
	if admitted.Load() == 0 {
		b.Fatal("every request was shed: the valve starved the admitted class")
	}
	b.ReportMetric(100*float64(shed.Load())/float64(total), "shed%")
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-ms")
}

// wireDeltaBody renders a churn delta as a /v1/apply request body.
func wireDeltaBody(b *testing.B, d rpi.Delta) []byte {
	b.Helper()
	var wd serve.WireDelta
	for _, j := range d.Joins {
		wd.Joins = append(wd.Joins, serve.WireJoin{
			IXP: j.IXP, Iface: j.Iface.String(), ASN: uint32(j.ASN), PortMbps: j.PortMbps,
		})
	}
	for _, l := range d.Leaves {
		wd.Leaves = append(wd.Leaves, serve.WireKey{IXP: l.IXP, Iface: l.Iface.String()})
	}
	body, err := json.Marshal(wd)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// benchWorldPath returns the cached .rpw world for a scale rung,
// generating and writing it (untimed) on first use. The cache survives
// across benchmark invocations — RPI_WORLD_CACHE overrides the
// default .benchcache directory (gitignored; CI caches it between
// jobs) — so the 1024x rung pays world generation once per machine,
// not once per run.
func benchWorldPath(b *testing.B, factor int) string {
	b.Helper()
	dir := os.Getenv("RPI_WORLD_CACHE")
	if dir == "" {
		dir = ".benchcache"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("world-seed1-%dx.rpw", factor))
	if _, err := os.Stat(path); err == nil {
		return path
	}
	b.Logf("generating %dx world bundle %s (one-time, untimed)...", factor, path)
	cfg := netsim.DefaultConfig()
	if factor > 1 {
		cfg = netsim.ScaledConfig(factor)
	}
	in, err := rpi.InputsFromConfig(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := worldfile.WriteFile(path, in); err != nil {
		b.Fatal(err)
	}
	return path
}

func BenchmarkScaleWorld(b *testing.B) {
	// The 64x rung (~324k memberships) became practical with the
	// interned-ID columnar substrate; the 256x rung (~1.3M
	// memberships) with the parallel columnar cold start (hashed
	// per-entity RNG streams, slab batches, sharded context build) —
	// before it, env-build there was a tens-of-minutes affair. The
	// 1024x rung (~5M memberships) runs over the binary world file:
	// generation is paid once into the cache, and the measured path is
	// what production pays — load + engine build, not generation.
	for _, factor := range []int{1, 4, 16, 64, 256} {
		factor := factor
		b.Run(fmt.Sprintf("%dx", factor), func(b *testing.B) {
			b.Run("env-build", func(b *testing.B) {
				b.ReportAllocs()
				var last *exp.Env
				for i := 0; i < b.N; i++ {
					e, err := exp.NewEnvWithConfig(netsim.ScaledConfig(factor), 1)
					if err != nil {
						b.Fatal(err)
					}
					last = e
					sink = e
				}
				// Domain size comes from the env built in the loop: a
				// benchScaledEnv call here would run inside the timed
				// window and double the recorded cost at -benchtime=1x.
				b.ReportMetric(float64(len(last.Report.Inferences)), "inferences/op")
				// Seed the cache so the sibling sub-benchmarks reuse
				// this env instead of rebuilding the same world.
				scaleMu.Lock()
				if _, ok := scaleEnvs[factor]; !ok {
					scaleEnvs[factor] = last
				}
				scaleMu.Unlock()
			})
			b.Run("context-build", func(b *testing.B) {
				e := benchScaledEnv(b, factor)
				b.ReportAllocs()
				runtime.GC() // don't bill env-build garbage to this phase
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := core.NewContext(e.Inputs)
					if err != nil {
						b.Fatal(err)
					}
					sink = c
				}
				b.ReportMetric(float64(len(e.Report.Inferences)), "inferences/op")
			})
			b.Run("pipeline", func(b *testing.B) {
				e := benchScaledEnv(b, factor)
				opt := core.DefaultOptions()
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := e.Ctx.Run(opt)
					if err != nil {
						b.Fatal(err)
					}
					sink = rep
				}
				b.ReportMetric(float64(len(e.Report.Inferences)), "inferences/op")
			})
			b.Run("suite", func(b *testing.B) {
				e := benchScaledEnv(b, factor)
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sink = exp.All(e)
				}
				b.ReportMetric(float64(len(e.Report.Inferences)), "inferences/op")
			})
		})
	}

	// The world-file rungs: the serving path loads a pre-generated
	// bundle instead of generating the world. 16x doubles as the CI
	// cache fixture; 1024x is the ~5M-membership tentpole. The suite
	// stage is skipped here — at 5M memberships the artefact
	// constructors are an offline analysis concern, not a serving one.
	for _, factor := range []int{16, 1024} {
		factor := factor
		b.Run(fmt.Sprintf("%dx-worldfile", factor), func(b *testing.B) {
			path := benchWorldPath(b, factor)
			b.Run("world-load", func(b *testing.B) {
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				var in rpi.Inputs
				for i := 0; i < b.N; i++ {
					var err error
					in, err = worldfile.Load(path)
					if err != nil {
						b.Fatal(err)
					}
					sink = in
				}
				b.ReportMetric(float64(len(in.World.Members)), "memberships/op")
			})
			b.Run("cold-to-serving", func(b *testing.B) {
				// Honest time-to-ready from a cold process: read + decode
				// the bundle, build the engine, run the pipeline.
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				var eng *rpi.Engine
				for i := 0; i < b.N; i++ {
					in, err := worldfile.Load(path)
					if err != nil {
						b.Fatal(err)
					}
					eng, err = rpi.New(in)
					if err != nil {
						b.Fatal(err)
					}
					sink = eng
				}
				b.StopTimer()
				b.ReportMetric(float64(len(eng.Snapshot().Inferences)), "inferences/op")
			})
			b.Run("pipeline", func(b *testing.B) {
				in, err := worldfile.Load(path)
				if err != nil {
					b.Fatal(err)
				}
				ctx, err := core.NewContext(in)
				if err != nil {
					b.Fatal(err)
				}
				opt := core.DefaultOptions()
				// Warm the context's alias/ring memos untimed so this rung
				// measures the same steady-state re-run as the generated
				// rungs' pipeline stage (the cold first run is what
				// cold-to-serving prices).
				if _, err := ctx.Run(opt); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				var rep *core.Report
				for i := 0; i < b.N; i++ {
					rep, err = ctx.Run(opt)
					if err != nil {
						b.Fatal(err)
					}
					sink = rep
				}
				b.StopTimer()
				b.ReportMetric(float64(len(rep.Inferences)), "inferences/op")
			})
		})
	}
}

// ---------------------------------------------------------------------------
// Crash recovery (PR 6)

// BenchmarkRecovery measures the two restart paths of the persistent
// engine: recovering from a published snapshot (replay = 0, the clean
// shutdown / checkpointed case) and replaying the full delta log with
// no snapshot at all (the worst case an un-checkpointed crash leaves
// behind). Both include the substrate rebuild and pipeline run, so
// ns/op is honest time-to-ready.
func BenchmarkRecovery(b *testing.B) {
	const seedDeltas = 16
	for _, factor := range []int{1, 16} {
		factor := factor
		b.Run(fmt.Sprintf("%dx", factor), func(b *testing.B) {
			e := benchScaledEnv(b, factor)
			seed := func(b *testing.B, dir string, opts ...rpi.Option) {
				b.Helper()
				opts = append([]rpi.Option{rpi.WithSync(rpi.SyncOff)}, opts...)
				eng, _, err := rpi.Open(dir, e.Inputs, opts...)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < seedDeltas; k++ {
					if _, err := eng.Apply(context.Background(), rpi.ChurnDelta(eng.Inputs(), 0.01, int64(300+k))); err != nil {
						b.Fatal(err)
					}
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.Run("snapshot-load", func(b *testing.B) {
				dir := b.TempDir()
				seed(b, dir) // clean Close publishes the final snapshot
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rec, info, err := rpi.Open(dir, e.Inputs, rpi.WithSync(rpi.SyncOff))
					if err != nil {
						b.Fatal(err)
					}
					if info.SnapshotSeq != seedDeltas || info.Replayed != 0 {
						b.Fatalf("not a snapshot-only recovery: %+v", info)
					}
					b.StopTimer()
					if err := rec.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					sink = rec
				}
				b.ReportMetric(float64(seedDeltas), "snapseq/op")
			})
			b.Run("log-replay", func(b *testing.B) {
				dir := b.TempDir()
				// Snapshots disabled while seeding; the final Close still
				// publishes one, so Replay is bounded below it on purpose:
				// replaying to seedDeltas-0 forces the no-snapshot path
				// only if no snapshot <= bound exists — bound at one short
				// of the close snapshot.
				seed(b, dir, rpi.WithSnapshotEvery(0))
				b.ReportAllocs()
				runtime.GC()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rec, info, err := rpi.Replay(dir, e.Inputs, seedDeltas-1)
					if err != nil {
						b.Fatal(err)
					}
					if info.SnapshotName != "" || info.Replayed != seedDeltas-1 {
						b.Fatalf("not a pure log replay: %+v", info)
					}
					rec.Close()
					sink = rec
				}
				b.ReportMetric(float64(seedDeltas-1), "replayed/op")
			})
		})
	}
}

// BenchmarkHostServe prices the multi-tenant serving plane: four
// tiny-world tenants behind one host, each iteration firing a
// concurrent burst of full-report reads spread across every tenant.
// Reads ride the per-publication report-byte cache (no delta traffic
// here), so this is the fleet's steady-state read path: admission,
// tenant routing, lease, cached bytes. Reported metrics are the SLO
// pair per the load generator: p50-ms/p99-ms of admitted reads and
// shed% across the burst.
func BenchmarkHostServe(b *testing.B) {
	const (
		tenants   = 4
		perTenant = 8
	)
	quiet := log.New(io.Discard, "", 0)
	h, err := host.Open(host.Config{
		Inputs: func(sp host.TenantSpec) (rpi.Inputs, error) {
			cfg := netsim.TinyConfig()
			cfg.Seed = sp.Seed
			return rpi.InputsFromConfig(cfg, sp.Seed)
		},
		Options: []rpi.Option{rpi.WithWALFS(wal.NewMemFS())},
		Logger:  quiet,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
		if err := h.Create(host.TenantSpec{Name: names[i], Seed: int64(i + 1), Profile: "tiny"}); err != nil {
			b.Fatal(err)
		}
	}
	srv := httptest.NewServer(serve.NewHost(h, "", serve.Config{Logger: quiet}))
	defer srv.Close()
	client := srv.Client()

	// First touch lazily opens each tenant's engine; that is the host's
	// open path, not the read path being priced here.
	for _, tn := range names {
		resp, err := client.Get(srv.URL + "/v1/t/" + tn + "/infer")
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("warm %s: %d", tn, resp.StatusCode)
		}
	}

	var (
		mu       sync.Mutex
		lat      []time.Duration
		admitted atomic.Uint64
		shed     atomic.Uint64
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, tn := range names {
			url := srv.URL + "/v1/t/" + tn + "/infer"
			for j := 0; j < perTenant; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					start := time.Now()
					resp, err := client.Get(url)
					if err != nil {
						b.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						d := time.Since(start)
						admitted.Add(1)
						mu.Lock()
						lat = append(lat, d)
						mu.Unlock()
					case http.StatusServiceUnavailable:
						shed.Add(1)
					default:
						b.Errorf("unexpected status %d", resp.StatusCode)
					}
				}()
			}
		}
		wg.Wait()
	}
	b.StopTimer()
	total := admitted.Load() + shed.Load()
	if admitted.Load() == 0 {
		b.Fatal("every read was shed")
	}
	b.ReportMetric(100*float64(shed.Load())/float64(total), "shed%")
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)/2])/float64(time.Millisecond), "p50-ms")
	b.ReportMetric(float64(lat[len(lat)*99/100])/float64(time.Millisecond), "p99-ms")
}
