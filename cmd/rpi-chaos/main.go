// Command rpi-chaos is the liveness proof of the serving plane: it
// stands up the full production wiring — persistent engine over a
// fault-injectable in-memory filesystem, supervisor guard, admission
// control, HTTP front end on a real listener — drives it with a mixed
// workload (readers, streamers, a deliberately stalled streamer,
// appliers, a deadline storm), injects engine faults while the traffic
// runs, and asserts the overload/self-healing SLOs:
//
//   - no deadlock or crash: the plane answers /healthz throughout;
//   - bounded latency for admitted reads (p99 under -p99-bound) —
//     overload answers fast 503s instead of queueing without bound;
//   - load shedding is observable: at least one 503 carries Retry-After;
//   - every injected fault (engine panic mid-apply, WAL append error)
//     quarantines the engine, reads keep serving, and the supervisor
//     re-Opens from the journal to a writable plane within
//     -recovery-bound, with sequence continuity intact;
//   - after each recovery the served report is byte-identical to a
//     cold engine rebuilt over the same inputs (the determinism
//     contract survives panic, abandon and replay).
//
// The run is deterministic in shape: -cycles fault cycles alternating
// the two fault kinds. The default is a short CI-friendly run; setting
// RPEER_CHAOS=1 (or -cycles) runs the long soak. Exit status 0 means
// every SLO held; any violation prints and exits 1.
//
// Usage:
//
//	rpi-chaos [-cycles N] [-seed N] [-recovery-bound 30s] [-p99-bound 2s] [-v]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rpeer/internal/netsim"
	"rpeer/internal/supervisor"
	"rpeer/internal/wal"
	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"

	"rpeer/internal/admission"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-chaos: ")
	cycles := flag.Int("cycles", 0, "fault cycles to run (0 = 2, or 8 with RPEER_CHAOS=1)")
	seed := flag.Int64("seed", 21, "world generation seed")
	recoveryBound := flag.Duration("recovery-bound", 30*time.Second, "max quarantine-to-writable time per fault")
	p99Bound := flag.Duration("p99-bound", 2*time.Second, "max p99 latency for admitted (200) reads")
	verbose := flag.Bool("v", false, "log supervisor and serve events")
	flag.Parse()

	n := *cycles
	if n == 0 {
		n = 2
		if os.Getenv("RPEER_CHAOS") != "" {
			n = 8
		}
	}
	if err := run(n, *seed, *recoveryBound, *p99Bound, *verbose); err != nil {
		log.Fatalf("FAIL: %v", err)
	}
	log.Printf("PASS: %d fault cycles, all SLOs held", n)
}

// harness is the in-process serving plane under test.
type harness struct {
	fsys  *wal.MemFS
	guard *supervisor.Guard
	front *serve.Server
	base  string // http://127.0.0.1:port
	ixp   string

	armed atomic.Bool // next apply panics inside the engine

	// applyMu serializes delta generation (and state-identity
	// verification) with delta application. ChurnDelta and a cold
	// rebuild both read the engine's live input maps (Inputs() is
	// documented read-only and mutated by later Applies), so neither
	// may run while another apply is in flight.
	applyMu sync.Mutex

	mu        sync.Mutex
	readLat   []time.Duration // latency of admitted (200) reads
	shed503   atomic.Uint64   // 503s carrying Retry-After
	badStatus atomic.Value    // first unexpected status, as string
}

func run(cycles int, seed int64, recoveryBound, p99Bound time.Duration, verbose bool) error {
	lg := log.New(io.Discard, "", 0)
	if verbose {
		lg = log.New(os.Stderr, "rpi-chaos: ", 0)
	}
	in, err := rpi.InputsFromConfig(netsim.TinyConfig(), seed)
	if err != nil {
		return err
	}
	h := &harness{fsys: wal.NewMemFS()}
	for _, name := range in.Dataset.PrefixIXP {
		h.ixp = name
		break
	}
	open := func() (*rpi.Engine, *rpi.RecoveryInfo, error) {
		return rpi.Open("chaos", in,
			rpi.WithWALFS(h.fsys),
			// Append-only fs traffic: injected faults land on the log,
			// never on a background snapshot.
			rpi.WithSnapshotEvery(0),
			rpi.WithLogger(lg),
			rpi.WithApplyHook(func(uint64, rpi.Delta) {
				if h.armed.CompareAndSwap(true, false) {
					panic("rpi-chaos: injected engine fault")
				}
			}),
		)
	}
	h.guard = supervisor.New(supervisor.Options{
		Reopen:        open,
		RetryInterval: 50 * time.Millisecond,
		Logger:        lg,
	})
	eng, _, err := open()
	if err != nil {
		return err
	}
	h.guard.Publish(eng)
	defer h.guard.Close()

	// Deliberately tiny limits: the workload must saturate them so the
	// shedding path is exercised, not just available.
	h.front = serve.NewSupervised(h.guard, serve.Config{
		Admission: admission.Config{
			Cheap:  admission.Limits{Slots: 4, Queue: 4, MaxWait: 500 * time.Millisecond},
			Read:   admission.Limits{Slots: 2, Queue: 2, MaxWait: 500 * time.Millisecond},
			Write:  admission.Limits{Slots: 1, Queue: 2, MaxWait: time.Second},
			Stream: admission.Limits{Slots: 2},
		},
		RequestTimeout:     2 * time.Second,
		StreamWriteTimeout: 500 * time.Millisecond,
		StreamBuffer:       2,
		Logger:             lg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h.front}
	go srv.Serve(ln)
	defer srv.Close()
	h.base = "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	start := func(f func(ctx context.Context)) {
		wg.Add(1)
		go func() { defer wg.Done(); f(ctx) }()
	}
	for i := 0; i < 2; i++ {
		i := i
		start(func(ctx context.Context) { h.reader(ctx, i) })
	}
	start(h.streamer)
	start(h.stalledStreamer)
	for i := 0; i < 2; i++ {
		i := i
		start(func(ctx context.Context) { h.applier(ctx, seed+int64(100*i)) })
	}
	start(h.deadlineStorm)
	defer func() { cancel(); wg.Wait() }()

	// Fault cycles: alternate an engine panic mid-apply with a WAL
	// append failure, with live traffic throughout.
	for cycle := 0; cycle < cycles; cycle++ {
		time.Sleep(300 * time.Millisecond) // steady-state traffic between faults
		wantFaults := uint64(cycle + 1)
		if cycle%2 == 0 {
			log.Printf("cycle %d: injecting engine panic mid-apply", cycle+1)
			h.armed.Store(true)
			// The background appliers will trip it; nudge with one
			// direct apply in case they are all shedding right now.
			h.applyOnce(seed + int64(1000+cycle))
		} else {
			log.Printf("cycle %d: injecting WAL append failure", cycle+1)
			h.fsys.InjectAt(1, wal.Fault{Mode: wal.FaultError})
			h.applyOnce(seed + int64(1000+cycle))
		}

		if err := h.waitStat(recoveryBound, "fault observed", func(s supervisor.Stats) bool {
			return s.Faults >= wantFaults
		}); err != nil {
			return err
		}
		if err := h.waitStat(recoveryBound, "recovery", func(s supervisor.Stats) bool {
			return s.Recoveries >= wantFaults && !s.Quarantined
		}); err != nil {
			return err
		}
		if err := h.waitWritable(recoveryBound); err != nil {
			return fmt.Errorf("cycle %d: %v", cycle+1, err)
		}
		if err := h.verifyStateIdentity(); err != nil {
			return fmt.Errorf("cycle %d: %v", cycle+1, err)
		}
		if st := h.guard.Stats(); st.ContinuityViolations != 0 {
			return fmt.Errorf("cycle %d: %d sequence continuity violations", cycle+1, st.ContinuityViolations)
		}
		log.Printf("cycle %d: recovered to writable, state verified (seq %d)", cycle+1, h.guard.Engine().Seq())
	}
	cancel()
	wg.Wait()

	// Final SLO accounting.
	if v := h.badStatus.Load(); v != nil {
		return fmt.Errorf("unexpected response: %s", v)
	}
	st := h.guard.Stats()
	if st.Recoveries != uint64(cycles) || st.Faults != uint64(cycles) {
		return fmt.Errorf("fault accounting: %d faults, %d recoveries, want %d each", st.Faults, st.Recoveries, cycles)
	}
	if h.shed503.Load() == 0 {
		return fmt.Errorf("load shedding never observed (no 503 with Retry-After)")
	}
	p99 := h.readP99()
	if p99 > p99Bound {
		return fmt.Errorf("admitted-read p99 %s exceeds bound %s", p99, p99Bound)
	}
	for _, probe := range []string{"/healthz", "/v1/infer"} {
		resp, err := http.Get(h.base + probe)
		if err != nil {
			return fmt.Errorf("final %s: %v", probe, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("final %s: status %d", probe, resp.StatusCode)
		}
	}
	log.Printf("reads: %d admitted (p99 %s), %d shed with Retry-After; dropped stream updates: engine total %d",
		h.readCount(), p99.Round(time.Millisecond), h.shed503.Load(), h.guard.Engine().DroppedUpdates())
	return nil
}

// waitStat polls the guard's stats until ok or the bound expires.
func (h *harness) waitStat(bound time.Duration, what string, ok func(supervisor.Stats) bool) error {
	deadline := time.Now().Add(bound)
	for {
		if ok(h.guard.Stats()) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s not reached within %s: %+v", what, bound, h.guard.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitWritable proves recovery end-to-end: /readyz answers 200 and an
// actual apply commits, all within the bound.
func (h *harness) waitWritable(bound time.Duration) error {
	deadline := time.Now().Add(bound)
	for {
		resp, err := http.Get(h.base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && h.applyOnce(time.Now().UnixNano()%1000) {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not writable within %s after fault", bound)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// verifyStateIdentity holds the write load off and checks the
// recovered engine's report is byte-identical to a cold rebuild over
// its own inputs.
func (h *harness) verifyStateIdentity() error {
	h.applyMu.Lock()
	defer h.applyMu.Unlock()
	eng := h.guard.Engine()
	cold, err := rpi.New(eng.Inputs())
	if err != nil {
		return fmt.Errorf("cold rebuild: %v", err)
	}
	got, err := rpi.MarshalReport(eng.Snapshot())
	if err != nil {
		return err
	}
	want, err := rpi.MarshalReport(cold.Snapshot())
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("recovered report differs from cold rebuild (%d vs %d bytes)", len(got), len(want))
	}
	return nil
}

// reader hammers the read endpoints, recording admitted-read latency
// and watching for shed 503s. Allowed statuses: 200, 503 (+Retry-After),
// 499 (the server noticed our own 2s deadline first), 404 never (the
// IXP exists).
func (h *harness) reader(ctx context.Context, id int) {
	cl := &http.Client{Timeout: 3 * time.Second}
	for i := 0; ctx.Err() == nil; i++ {
		url := h.base + "/v1/infer"
		if i%2 == id%2 {
			url = h.base + "/v1/report/" + h.ixp
		}
		t0 := time.Now()
		resp, err := cl.Get(url)
		if err != nil {
			continue // client-side timeout: the deadline storm's territory
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			h.recordRead(time.Since(t0))
		case http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") != "" {
				h.shed503.Add(1)
			}
		case serve.StatusClientClosedRequest:
			// server-side deadline: fine
		default:
			h.badStatus.CompareAndSwap(nil, fmt.Sprintf("GET %s -> %d", url, resp.StatusCode))
		}
	}
}

// streamer is a well-behaved SSE consumer that reconnects after every
// disconnect (slow-consumer cut, engine swap reset, or shed 503).
func (h *harness) streamer(ctx context.Context) {
	for ctx.Err() == nil {
		req, _ := http.NewRequestWithContext(ctx, "GET", h.base+"/v1/stream", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				if resp.Header.Get("Retry-After") != "" {
					h.shed503.Add(1)
				}
				time.Sleep(100 * time.Millisecond)
				continue
			}
			h.badStatus.CompareAndSwap(nil, fmt.Sprintf("GET /v1/stream -> %d", resp.StatusCode))
			return
		}
		// Drain events until the server ends the stream.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// stalledStreamer opens the stream and never reads a byte: the server
// must shed its updates and cut it loose, never block on it. It
// redials after each cut.
func (h *harness) stalledStreamer(ctx context.Context) {
	for ctx.Err() == nil {
		d := net.Dialer{Timeout: time.Second}
		conn, err := d.DialContext(ctx, "tcp", h.base[len("http://"):])
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetReadBuffer(2048)
		}
		fmt.Fprintf(conn, "GET /v1/stream HTTP/1.1\r\nHost: stalled\r\n\r\n")
		// Sit silent until the server gives up on us or the run ends.
		select {
		case <-ctx.Done():
		case <-connClosed(conn):
		}
		conn.Close()
	}
}

// connClosed signals when the peer closes the connection (detected by
// a blocking read — which this client otherwise never does).
func connClosed(conn net.Conn) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
			// Keep NOT consuming in spirit: read slower than the server
			// produces by sleeping between reads.
			time.Sleep(2 * time.Second)
		}
	}()
	return ch
}

// applier churns memberships through POST /v1/apply. Each applier
// alternates a forward churn delta with its inverse, so the world stays
// bounded no matter how long the run is.
func (h *harness) applier(ctx context.Context, seed int64) {
	cl := &http.Client{Timeout: 5 * time.Second}
	rng := rand.New(rand.NewSource(seed))
	for ctx.Err() == nil {
		if !h.generateAndApply(cl, rng.Int63()) {
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// postDelta sends one delta; returns whether it was committed.
// Allowed: 200, 503 (quarantine/overload), 422/400 (the delta lost a
// validation race with concurrent churn), 499.
func (h *harness) postDelta(cl *http.Client, d rpi.Delta) bool {
	body, err := marshalWireDelta(d)
	if err != nil {
		h.badStatus.CompareAndSwap(nil, fmt.Sprintf("marshal delta: %v", err))
		return false
	}
	resp, err := cl.Post(h.base+"/v1/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true
	case http.StatusServiceUnavailable:
		if resp.Header.Get("Retry-After") != "" {
			h.shed503.Add(1)
		}
	case http.StatusBadRequest, http.StatusUnprocessableEntity, serve.StatusClientClosedRequest:
	default:
		h.badStatus.CompareAndSwap(nil, fmt.Sprintf("POST /v1/apply -> %d", resp.StatusCode))
	}
	return false
}

// applyOnce builds a delta from the current engine state and posts it
// once (the fault-cycle nudge and the writability probe).
func (h *harness) applyOnce(seed int64) bool {
	cl := &http.Client{Timeout: 5 * time.Second}
	return h.generateAndApply(cl, seed)
}

// generateAndApply builds a churn delta against the current engine
// state and posts it, holding applyMu across both so no concurrent
// apply mutates the input maps mid-generation.
func (h *harness) generateAndApply(cl *http.Client, seed int64) bool {
	h.applyMu.Lock()
	defer h.applyMu.Unlock()
	eng := h.guard.Engine()
	if eng == nil {
		return false
	}
	return h.postDelta(cl, rpi.ChurnDelta(eng.Inputs(), 0.05, seed))
}

// deadlineStorm sends reads that give up after 1ms: every one of them
// exercises the cancellation path (admission queue exit or marshal
// checkpoint) without costing the engine anything.
func (h *harness) deadlineStorm(ctx context.Context) {
	cl := &http.Client{Timeout: time.Millisecond}
	for ctx.Err() == nil {
		resp, err := cl.Get(h.base + "/v1/infer")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (h *harness) recordRead(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.readLat = append(h.readLat, d)
}

func (h *harness) readCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.readLat)
}

func (h *harness) readP99() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.readLat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.readLat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// marshalWireDelta renders an rpi.Delta as the /v1/apply JSON body.
func marshalWireDelta(d rpi.Delta) ([]byte, error) {
	wd := serve.WireDelta{}
	for _, j := range d.Joins {
		wd.Joins = append(wd.Joins, serve.WireJoin{
			IXP: j.IXP, Iface: j.Iface.String(), ASN: uint32(j.ASN), PortMbps: j.PortMbps,
		})
	}
	for _, l := range d.Leaves {
		wd.Leaves = append(wd.Leaves, serve.WireKey{IXP: l.IXP, Iface: l.Iface.String()})
	}
	return json.Marshal(wd)
}
