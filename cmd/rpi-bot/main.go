// Command rpi-bot is the fleet-scale load generator: it stands up (or
// targets) a multi-tenant serving host and drives every tenant with a
// mixed population of readers, appliers and SSE streamers, then
// reports per-tenant, per-class admitted p50/p99 latency and shed
// percentage — the serving plane's SLO-under-load numbers.
//
// Default mode is self-contained: an in-process host with N tiny-world
// tenants over an in-memory WAL, so `rpi-bot` with no flags is a
// complete fleet benchmark. After the run it cross-checks every
// tenant: the host's /v1/t/{tenant}/infer bytes must be byte-identical
// to a fresh single-engine rpi-serve handler built over the same
// inputs — multi-tenancy must not change a single served byte.
//
//	rpi-bot -tenants 4 -readers 6 -appliers 1 -streamers 2 -duration 5s
//	rpi-bot -o BENCH_PR8.json -merge     # record/refresh the SLO snapshot
//	rpi-bot -addr http://host:8090       # drive an external rpi-serve -multi
//
// With -o the results are written as benchmark records in the same
// JSON shape as rpi-benchsnap; -merge folds them into an existing file
// (replacing records with the same name) instead of overwriting it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"rpeer/internal/admission"
	"rpeer/internal/bot"
	"rpeer/internal/host"
	"rpeer/internal/netsim"
	"rpeer/internal/wal"
	"rpeer/internal/worldfile"
	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-bot: ")
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "", "drive an external host at this base URL instead of an in-process one")
	tenants := flag.Int("tenants", 4, "number of tenants to drive")
	readers := flag.Int("readers", 6, "reader workers per tenant (infer + cheap per-IXP reads)")
	appliers := flag.Int("appliers", 1, "applier workers per tenant (churn + inverse deltas)")
	streamers := flag.Int("streamers", 2, "SSE streamer workers per tenant")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	seed := flag.Int64("seed", 1, "base world seed; tenant i uses seed+i")
	worldPath := flag.String("world", "", "serve this pre-generated .rpw world bundle to every tenant (in-process mode) instead of per-tenant tiny worlds")
	churn := flag.Float64("churn", 0.02, "membership fraction churned per applier delta")
	readSlots := flag.Int("read-slots", 0, "override full-report read slots (0 = admission default); lower to provoke shedding")
	tenantShare := flag.Float64("tenant-share", 0, "per-tenant fairness share of each class's slots (0 = default)")
	out := flag.String("o", "", "write benchmark records to this JSON file (rpi-benchsnap shape)")
	merge := flag.Bool("merge", false, "with -o: merge into the existing file, replacing same-name records")
	verify := flag.Bool("verify", true, "after the run, check per-tenant byte identity vs a single-engine server (in-process mode only)")
	flag.Parse()

	if *tenants < 1 {
		log.Print("need at least one tenant")
		return 2
	}
	names := make([]string, *tenants)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := bot.Config{
		Tenants:   names,
		Readers:   *readers,
		Appliers:  *appliers,
		Streamers: *streamers,
		Duration:  *duration,
		ChurnFrac: *churn,
	}

	var h *host.Host
	if *addr == "" {
		adm := admission.Config{TenantShare: *tenantShare}
		if *readSlots > 0 {
			adm.Read = admission.Limits{Slots: *readSlots, Queue: 2 * *readSlots, MaxWait: 2 * time.Second}
		}
		var base string
		var shutdown func()
		var err error
		h, base, shutdown, err = inProcessHost(names, *seed, *worldPath, adm)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer shutdown()
		cfg.BaseURL = base
		cfg.Inputs = func(tn string) (rpi.Inputs, error) { return liveInputs(h, tn) }
		worlds := "tiny worlds"
		if *worldPath != "" {
			worlds = "world bundle " + *worldPath
		}
		log.Printf("in-process host on %s: %d tenants, %s, in-memory WAL", base, *tenants, worlds)
	} else {
		cfg.BaseURL = strings.TrimRight(*addr, "/")
		if err := ensureTenants(ctx, cfg.BaseURL, names, *seed); err != nil {
			log.Print(err)
			return 1
		}
		// The remote engine's inputs are invisible, so deltas are
		// generated against the deterministic base world; the applier's
		// churn-then-inverse pairing keeps that view valid at pair
		// boundaries, and validation races surface as rejected counts.
		cfg.Inputs = func(tn string) (rpi.Inputs, error) {
			return tinyInputs(tenantSeed(*seed, names, tn))
		}
		log.Printf("driving external host %s: %d tenants", cfg.BaseURL, *tenants)
	}

	rep, err := bot.Run(ctx, cfg)
	if err != nil {
		log.Print(err)
		return 1
	}
	printReport(rep)
	if rep.BadStatus != "" {
		log.Printf("PROTOCOL VIOLATION: %s", rep.BadStatus)
		return 1
	}

	if *verify && h != nil {
		if err := verifyByteIdentity(h, cfg.BaseURL, names); err != nil {
			log.Printf("BYTE IDENTITY FAILED: %v", err)
			return 1
		}
		log.Printf("byte identity: all %d tenants match a single-engine server over the same inputs", *tenants)
	}

	if *out != "" {
		if err := writeSnapshot(*out, *merge, rep); err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("wrote %s", *out)
	}
	return 0
}

// tinyInputs is the deterministic per-tenant base world.
func tinyInputs(seed int64) (rpi.Inputs, error) {
	cfg := netsim.TinyConfig()
	cfg.Seed = seed
	return rpi.InputsFromConfig(cfg, seed)
}

func tenantSeed(base int64, names []string, tn string) int64 {
	for i, n := range names {
		if n == tn {
			return base + int64(i)
		}
	}
	return base
}

// inProcessHost stands up the self-contained fleet: a host with one
// tiny world per tenant (or one shared pre-generated .rpw bundle) over
// an in-memory WAL, fronted by the shared serving plane on a loopback
// listener.
func inProcessHost(names []string, seed int64, worldPath string, adm admission.Config) (*host.Host, string, func(), error) {
	inputs := func(sp host.TenantSpec) (rpi.Inputs, error) {
		return tinyInputs(sp.Seed)
	}
	if worldPath != "" {
		// Load once; the bundle is read-only shared state, so every
		// tenant's engine can serve the same decoded world.
		in, err := worldfile.Load(worldPath)
		if err != nil {
			return nil, "", nil, err
		}
		inputs = func(host.TenantSpec) (rpi.Inputs, error) { return in, nil }
	}
	h, err := host.Open(host.Config{
		Inputs:     inputs,
		Options:    []rpi.Option{rpi.WithWALFS(wal.NewMemFS())},
		MaxTenants: len(names),
		Logger:     log.New(io.Discard, "", 0),
	})
	if err != nil {
		return nil, "", nil, err
	}
	for i, tn := range names {
		if err := h.Create(host.TenantSpec{Name: tn, Seed: seed + int64(i), Profile: "tiny"}); err != nil {
			_ = h.Close()
			return nil, "", nil, err
		}
	}
	front := serve.NewHost(h, "", serve.Config{
		Admission:      adm,
		RequestTimeout: 10 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = h.Close()
		return nil, "", nil, err
	}
	srv := &http.Server{Handler: front}
	go func() { _ = srv.Serve(ln) }()
	shutdown := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
		_ = h.Close()
	}
	return h, "http://" + ln.Addr().String(), shutdown, nil
}

// liveInputs reads a tenant's current engine inputs under a lease (the
// bot serializes per-tenant writers, so the snapshot stays valid for
// delta generation until its forward+inverse pair completes).
func liveInputs(h *host.Host, tn string) (rpi.Inputs, error) {
	lease, err := h.Lease(context.Background(), tn)
	if err != nil {
		return rpi.Inputs{}, err
	}
	defer lease.Release()
	eng := lease.Guard().Engine()
	if eng == nil {
		return rpi.Inputs{}, errors.New("tenant has no engine (quarantined?)")
	}
	return eng.Inputs(), nil
}

// ensureTenants registers the bot's tenants on an external host,
// tolerating ones that already exist.
func ensureTenants(ctx context.Context, base string, names []string, seed int64) error {
	cl := &http.Client{Timeout: 10 * time.Second}
	for i, tn := range names {
		body, _ := json.Marshal(host.TenantSpec{Name: tn, Seed: seed + int64(i), Profile: "tiny"})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/tenants", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cl.Do(req)
		if err != nil {
			return fmt.Errorf("create tenant %q: %w", tn, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
		case http.StatusConflict:
			log.Printf("tenant %q already exists: assuming seed %d, profile tiny", tn, seed+int64(i))
		default:
			return fmt.Errorf("create tenant %q: status %d", tn, resp.StatusCode)
		}
	}
	return nil
}

// verifyByteIdentity proves multi-tenancy is invisible to readers: for
// each tenant, a fresh single-engine server built over the tenant
// engine's current inputs must serve exactly the bytes the host
// serves. (Engine inputs track every applied delta, so a cold rebuild
// over them equals the incrementally-maintained world — the same
// invariant the chaos harness checks.)
func verifyByteIdentity(h *host.Host, base string, names []string) error {
	cl := &http.Client{Timeout: 30 * time.Second}
	for _, tn := range names {
		lease, err := h.Lease(context.Background(), tn)
		if err != nil {
			return fmt.Errorf("tenant %q: %w", tn, err)
		}
		eng := lease.Guard().Engine()
		if eng == nil {
			lease.Release()
			return fmt.Errorf("tenant %q: no engine", tn)
		}
		cold, err := rpi.New(eng.Inputs())
		lease.Release()
		if err != nil {
			return fmt.Errorf("tenant %q: cold rebuild: %w", tn, err)
		}
		single := httptest.NewServer(serve.New(cold))
		singleBytes, err := getBody(cl, single.URL+"/v1/infer")
		single.Close()
		cold.Abandon()
		if err != nil {
			return fmt.Errorf("tenant %q: single-engine read: %w", tn, err)
		}
		hostBytes, err := getBody(cl, base+"/v1/t/"+tn+"/infer")
		if err != nil {
			return fmt.Errorf("tenant %q: host read: %w", tn, err)
		}
		if !bytes.Equal(hostBytes, singleBytes) {
			return fmt.Errorf("tenant %q: host served %d bytes != single-engine %d bytes",
				tn, len(hostBytes), len(singleBytes))
		}
	}
	return nil
}

func getBody(cl *http.Client, url string) ([]byte, error) {
	resp, err := cl.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return b, nil
}

func printReport(rep *bot.Report) {
	tns := make([]string, 0, len(rep.Tenants))
	for tn := range rep.Tenants {
		tns = append(tns, tn)
	}
	sort.Strings(tns)
	log.Printf("%-8s %-7s %9s %9s %7s %6s %6s %9s %9s",
		"tenant", "class", "requests", "admitted", "shed", "rej", "err", "p50(ms)", "p99(ms)")
	for _, tn := range tns {
		for _, cl := range []string{"read", "cheap", "write", "stream"} {
			st, ok := rep.Tenants[tn][cl]
			if !ok || st.Requests == 0 {
				continue
			}
			log.Printf("%-8s %-7s %9d %9d %6.1f%% %6d %6d %9.2f %9.2f",
				tn, cl, st.Requests, st.Admitted, st.ShedPct(), st.Rejected, st.Errors, st.P50Ms, st.P99Ms)
		}
		if ev := rep.StreamEvents[tn]; ev > 0 {
			log.Printf("%-8s %-7s %9d stream update events", tn, "", ev)
		}
	}
}

// Record / Snapshot mirror rpi-benchsnap's JSON file layout, so bot
// results land in the same BENCH_PRn.json files the CI snapshots.
type record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type snapshot struct {
	GoOS   string   `json:"goos,omitempty"`
	GoArch string   `json:"goarch,omitempty"`
	Pkg    string   `json:"pkg,omitempty"`
	CPU    string   `json:"cpu,omitempty"`
	Bench  []record `json:"benchmarks"`
}

// writeSnapshot renders the run as one benchmark record per (tenant,
// class) with p50/p99/shed% metrics, plus a fleet-wide read aggregate,
// and writes (or merges) the rpi-benchsnap-shaped file.
func writeSnapshot(path string, merge bool, rep *bot.Report) error {
	var recs []record
	tns := make([]string, 0, len(rep.Tenants))
	for tn := range rep.Tenants {
		tns = append(tns, tn)
	}
	sort.Strings(tns)
	var aggReq, aggAdm, aggShed uint64
	var aggLatMs float64
	for _, tn := range tns {
		for _, cl := range []string{"read", "write", "stream"} {
			st, ok := rep.Tenants[tn][cl]
			if !ok || st.Requests == 0 {
				continue
			}
			recs = append(recs, record{
				Name:       fmt.Sprintf("BotHostLoad/tenant=%s/class=%s", orDefault(tn), cl),
				Iterations: int64(st.Admitted),
				NsPerOp:    st.MeanMs * 1e6,
				Metrics: map[string]float64{
					"p50-ms":   st.P50Ms,
					"p99-ms":   st.P99Ms,
					"shed-pct": st.ShedPct(),
				},
			})
			if cl == "read" {
				aggReq += st.Requests
				aggAdm += st.Admitted
				aggShed += st.Shed
				aggLatMs += st.MeanMs * float64(st.Admitted)
			}
		}
	}
	if aggAdm > 0 {
		shedPct := 100 * float64(aggShed) / float64(aggReq)
		recs = append(recs, record{
			Name:       "BotHostLoad/fleet/class=read",
			Iterations: int64(aggAdm),
			NsPerOp:    aggLatMs / float64(aggAdm) * 1e6,
			Metrics: map[string]float64{
				"shed-pct":  shedPct,
				"tenants":   float64(len(rep.Tenants)),
				"reads-sec": float64(aggAdm) / rep.Duration.Seconds(),
			},
		})
	}

	snap := snapshot{
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		Pkg:    "rpeer/cmd/rpi-bot",
		Bench:  recs,
	}
	if merge {
		if prev, err := os.ReadFile(path); err == nil {
			var old snapshot
			if err := json.Unmarshal(prev, &old); err != nil {
				return fmt.Errorf("merge %s: %w", path, err)
			}
			mine := make(map[string]bool, len(recs))
			for _, r := range recs {
				mine[r.Name] = true
			}
			kept := make([]record, 0, len(old.Bench)+len(recs))
			for _, r := range old.Bench {
				if !mine[r.Name] {
					kept = append(kept, r)
				}
			}
			snap.Bench = append(kept, recs...)
			if old.Pkg != "" && old.Pkg != snap.Pkg {
				snap.Pkg = old.Pkg + "+rpi-bot"
			}
			if old.CPU != "" {
				snap.CPU = old.CPU
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func orDefault(tn string) string {
	if tn == "" {
		return "default"
	}
	return tn
}
