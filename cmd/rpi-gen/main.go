// Command rpi-gen generates a synthetic IXP world and dumps its
// observable datasets (merged registry, colocation DB, ground-truth
// summary) as JSON, for inspection or for feeding external tooling.
//
// Usage:
//
//	rpi-gen [-seed N] [-scale N] [-ases N] [-ixps N] [-o world.json]
//
// When -o names a .rpw file, rpi-gen instead builds the complete input
// bundle (world, registry, colo DB, ping campaign, traceroute corpus)
// and writes it in the binary columnar interchange format of
// internal/worldfile — the "generate once, serve many" path: the file
// is what rpi-serve -world and the scaling benchmarks load, skipping
// world generation entirely.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"rpeer/internal/netsim"
	"rpeer/internal/registry"
	"rpeer/internal/worldfile"
	"rpeer/pkg/rpi"
)

type dump struct {
	Seed       int64          `json:"seed"`
	Facilities []facilityJSON `json:"facilities"`
	IXPs       []ixpJSON      `json:"ixps"`
	Members    []memberJSON   `json:"members"`
	Sources    []sourceJSON   `json:"registry_sources"`
}

type facilityJSON struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	City    string  `json:"city"`
	Country string  `json:"country"`
	Lat     float64 `json:"lat"`
	Lon     float64 `json:"lon"`
}

type ixpJSON struct {
	Name        string `json:"name"`
	PeeringLAN  string `json:"peering_lan"`
	Facilities  int    `json:"facilities"`
	Members     int    `json:"members"`
	WideArea    bool   `json:"wide_area"`
	Resellers   bool   `json:"allows_resellers"`
	MinPortMbps int    `json:"min_port_mbps"`
}

type memberJSON struct {
	IXP      string `json:"ixp"`
	ASN      uint32 `json:"asn"`
	Iface    string `json:"iface"`
	PortMbps int    `json:"port_mbps"`
	// Kind is the hidden ground truth; included because rpi-gen dumps
	// the oracle view (the inference tools never read this).
	Kind string `json:"kind"`
}

type sourceJSON struct {
	Source     string `json:"source"`
	Prefixes   int    `json:"prefixes"`
	Interfaces int    `json:"interfaces"`
	Conflicts  int    `json:"conflicts"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-gen: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	scale := flag.Int("scale", 1, "world scale factor (1 = paper-sized default)")
	ases := flag.Int("ases", 0, "override number of ASes (0 = default)")
	ixps := flag.Int("ixps", 0, "override number of IXPs (0 = default)")
	out := flag.String("o", "", "output file (default stdout; a .rpw suffix writes the binary world bundle instead)")
	worldOut := flag.String("world", "", "also save the full world (reloadable via netsim.Load) to this file")
	flag.Parse()

	cfg := netsim.DefaultConfig()
	if *scale > 1 {
		cfg = netsim.ScaledConfig(*scale)
	}
	cfg.Seed = *seed
	if *ases > 0 {
		cfg.NASes = *ases
	}
	if *ixps > 0 {
		cfg.NIXPs = *ixps
	}

	if strings.HasSuffix(*out, ".rpw") {
		writeWorldFile(cfg, *seed, *out)
		return
	}

	w, err := netsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := registry.Build(w, registry.DefaultNoise(), *seed+1)

	d := dump{Seed: *seed}
	for _, f := range w.Facilities {
		d.Facilities = append(d.Facilities, facilityJSON{
			ID: int(f.ID), Name: f.Name, City: f.City, Country: f.Country,
			Lat: f.Loc.Lat, Lon: f.Loc.Lon,
		})
	}
	for _, ix := range w.IXPs {
		d.IXPs = append(d.IXPs, ixpJSON{
			Name: ix.Name, PeeringLAN: ix.PeeringLAN.String(),
			Facilities: len(ix.Facilities), Members: len(w.MembersOf(ix.ID)),
			WideArea: ix.WideArea, Resellers: ix.AllowsResellers,
			MinPortMbps: ix.MinPortMbps,
		})
	}
	for _, m := range w.Members {
		d.Members = append(d.Members, memberJSON{
			IXP: w.IXP(m.IXP).Name, ASN: uint32(m.ASN), Iface: m.Iface.String(),
			PortMbps: m.PortMbps, Kind: m.Kind.String(),
		})
	}
	for _, st := range ds.Stats {
		d.Sources = append(d.Sources, sourceJSON{
			Source: st.Source.String(), Prefixes: st.Prefixes,
			Interfaces: st.Interfaces, Conflicts: st.ConflictInterfaces,
		})
	}

	if *worldOut != "" {
		f, err := os.Create(*worldOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rpi-gen: full world saved to %s\n", *worldOut)
	}

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rpi-gen: %d facilities, %d IXPs, %d memberships\n",
		len(d.Facilities), len(d.IXPs), len(d.Members))
}

// writeWorldFile is the "generate once" leg: build the complete input
// bundle over cfg and publish it atomically as a binary .rpw world.
func writeWorldFile(cfg netsim.Config, seed int64, path string) {
	start := time.Now()
	in, err := rpi.InputsFromConfig(cfg, seed)
	if err != nil {
		log.Fatal(err)
	}
	genDone := time.Now()
	if err := worldfile.WriteFile(path, in); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"rpi-gen: world bundle %s: %d memberships, %d paths, %.1f MB (generate %s, write %s)\n",
		path, len(in.World.Members), len(in.Paths), float64(st.Size())/(1<<20),
		genDone.Sub(start).Round(time.Millisecond), time.Since(genDone).Round(time.Millisecond))
}
