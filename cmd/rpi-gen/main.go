// Command rpi-gen generates a synthetic IXP world and dumps its
// observable datasets (merged registry, colocation DB, ground-truth
// summary) as JSON, for inspection or for feeding external tooling.
//
// Usage:
//
//	rpi-gen [-seed N] [-ases N] [-ixps N] [-o world.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"rpeer/internal/netsim"
	"rpeer/internal/registry"
)

type dump struct {
	Seed       int64          `json:"seed"`
	Facilities []facilityJSON `json:"facilities"`
	IXPs       []ixpJSON      `json:"ixps"`
	Members    []memberJSON   `json:"members"`
	Sources    []sourceJSON   `json:"registry_sources"`
}

type facilityJSON struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	City    string  `json:"city"`
	Country string  `json:"country"`
	Lat     float64 `json:"lat"`
	Lon     float64 `json:"lon"`
}

type ixpJSON struct {
	Name        string `json:"name"`
	PeeringLAN  string `json:"peering_lan"`
	Facilities  int    `json:"facilities"`
	Members     int    `json:"members"`
	WideArea    bool   `json:"wide_area"`
	Resellers   bool   `json:"allows_resellers"`
	MinPortMbps int    `json:"min_port_mbps"`
}

type memberJSON struct {
	IXP      string `json:"ixp"`
	ASN      uint32 `json:"asn"`
	Iface    string `json:"iface"`
	PortMbps int    `json:"port_mbps"`
	// Kind is the hidden ground truth; included because rpi-gen dumps
	// the oracle view (the inference tools never read this).
	Kind string `json:"kind"`
}

type sourceJSON struct {
	Source     string `json:"source"`
	Prefixes   int    `json:"prefixes"`
	Interfaces int    `json:"interfaces"`
	Conflicts  int    `json:"conflicts"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-gen: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	ases := flag.Int("ases", 0, "override number of ASes (0 = default)")
	ixps := flag.Int("ixps", 0, "override number of IXPs (0 = default)")
	out := flag.String("o", "", "output file (default stdout)")
	worldOut := flag.String("world", "", "also save the full world (reloadable via netsim.Load) to this file")
	flag.Parse()

	cfg := netsim.DefaultConfig()
	cfg.Seed = *seed
	if *ases > 0 {
		cfg.NASes = *ases
	}
	if *ixps > 0 {
		cfg.NIXPs = *ixps
	}
	w, err := netsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ds := registry.Build(w, registry.DefaultNoise(), *seed+1)

	d := dump{Seed: *seed}
	for _, f := range w.Facilities {
		d.Facilities = append(d.Facilities, facilityJSON{
			ID: int(f.ID), Name: f.Name, City: f.City, Country: f.Country,
			Lat: f.Loc.Lat, Lon: f.Loc.Lon,
		})
	}
	for _, ix := range w.IXPs {
		d.IXPs = append(d.IXPs, ixpJSON{
			Name: ix.Name, PeeringLAN: ix.PeeringLAN.String(),
			Facilities: len(ix.Facilities), Members: len(w.MembersOf(ix.ID)),
			WideArea: ix.WideArea, Resellers: ix.AllowsResellers,
			MinPortMbps: ix.MinPortMbps,
		})
	}
	for _, m := range w.Members {
		d.Members = append(d.Members, memberJSON{
			IXP: w.IXP(m.IXP).Name, ASN: uint32(m.ASN), Iface: m.Iface.String(),
			PortMbps: m.PortMbps, Kind: m.Kind.String(),
		})
	}
	for _, st := range ds.Stats {
		d.Sources = append(d.Sources, sourceJSON{
			Source: st.Source.String(), Prefixes: st.Prefixes,
			Interfaces: st.Interfaces, Conflicts: st.ConflictInterfaces,
		})
	}

	if *worldOut != "" {
		f, err := os.Create(*worldOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Save(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rpi-gen: full world saved to %s\n", *worldOut)
	}

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rpi-gen: %d facilities, %d IXPs, %d memberships\n",
		len(d.Facilities), len(d.IXPs), len(d.Members))
}
