// Command rpi-validate scores the methodology against the ground-truth
// validation dataset: the Table 4 per-step metrics, the Fig 8 per-IXP
// breakdown, and the comparison against the RTT-threshold baseline.
//
// Usage:
//
//	rpi-validate [-seed N] [-threshold ms]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rpeer/internal/core"
	"rpeer/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-validate: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	threshold := flag.Float64("threshold", core.DefaultBaselineThresholdMs,
		"baseline remoteness RTT threshold in ms")
	flag.Parse()

	env, err := exp.NewEnv(*seed)
	if err != nil {
		log.Fatal(err)
	}

	if *threshold != core.DefaultBaselineThresholdMs {
		base, err := env.Ctx.Baseline(*threshold)
		if err != nil {
			log.Fatal(err)
		}
		env.BaseReport = base
	}

	r := exp.Table4(env)
	r.Table.Render(os.Stdout)
	fmt.Printf("\npaper: %s\n\n", r.PaperClaim)

	f := exp.Fig8(env)
	f.Table.Render(os.Stdout)
	fmt.Printf("\npaper: %s\n", f.PaperClaim)
}
