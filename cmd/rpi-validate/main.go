// Command rpi-validate scores the methodology against the ground-truth
// validation dataset: the Table 4 per-step metrics, the Fig 8 per-IXP
// breakdown, and the comparison against the RTT-threshold baseline.
//
// Usage:
//
//	rpi-validate [-seed N] [-threshold ms] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rpeer/internal/exp"
	"rpeer/pkg/rpi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-validate: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	threshold := flag.Float64("threshold", rpi.DefaultBaselineThresholdMs,
		"baseline remoteness RTT threshold in ms")
	workers := flag.Int("workers", 0, "inference shard workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	env, err := exp.NewEnv(*seed,
		rpi.WithWorkers(*workers), rpi.WithThreshold(*threshold))
	if err != nil {
		log.Fatal(err)
	}

	r := exp.Table4(env)
	r.Table.Render(os.Stdout)
	fmt.Printf("\npaper: %s\n\n", r.PaperClaim)

	f := exp.Fig8(env)
	f.Table.Render(os.Stdout)
	fmt.Printf("\npaper: %s\n", f.PaperClaim)
}
