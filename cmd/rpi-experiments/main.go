// Command rpi-experiments regenerates every table and figure of the
// paper's evaluation and prints each next to the paper's reported
// claim, in paper order. Use -markdown to emit the EXPERIMENTS.md
// body.
//
// Usage:
//
//	rpi-experiments [-seed N] [-markdown]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rpeer/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-experiments: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	markdown := flag.Bool("markdown", false, "emit Markdown (EXPERIMENTS.md body)")
	workers := flag.Int("workers", 0, "artefact workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	env, err := exp.NewEnv(*seed)
	if err != nil {
		log.Fatal(err)
	}
	results := exp.AllWorkers(env, *workers)

	for _, r := range results {
		if *markdown {
			fmt.Printf("## %s — %s\n\n", r.ID, r.Title)
			fmt.Printf("**Paper:** %s\n\n", r.PaperClaim)
			fmt.Printf("**Measured (seed %d):**\n\n```\n", *seed)
			r.Table.Render(os.Stdout)
			fmt.Printf("```\n\n")
			for _, n := range r.Notes {
				fmt.Printf("> %s\n\n", n)
			}
			continue
		}
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Title)
		r.Table.Render(os.Stdout)
		fmt.Printf("paper: %s\n", r.PaperClaim)
		for _, n := range r.Notes {
			fmt.Printf("note:  %s\n", n)
		}
		fmt.Println()
	}
}
