// Command rpi-infer runs the full five-step remote peering inference
// pipeline over a generated world and prints the per-IXP verdicts: how
// many members are local, remote or undecided, and which step decided
// them (the Fig 10a/10b view).
//
// Usage:
//
//	rpi-infer [-seed N] [-top N] [-workers N] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"rpeer/internal/exp"
	"rpeer/internal/report"
	"rpeer/pkg/rpi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-infer: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	top := flag.Int("top", 30, "number of largest IXPs to report")
	workers := flag.Int("workers", 0, "inference shard workers (0 = one per CPU, 1 = serial)")
	verbose := flag.Bool("v", false, "also list per-interface verdicts of the largest IXP")
	flag.Parse()

	env, err := exp.NewEnv(*seed, rpi.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Remote peering inference (per IXP)",
		"IXP", "interfaces", "local", "remote", "unknown", "remote %",
		"step1", "step2+3", "step4", "step5")
	shares := env.Report.StepShare()
	var totLocal, totRemote, totUnknown int
	for _, ix := range env.StudiedIXPs(*top) {
		var local, remote, unknown int
		for _, inf := range env.Report.Inferences {
			if inf.IXP != ix.Name {
				continue
			}
			switch inf.Class {
			case rpi.ClassLocal:
				local++
			case rpi.ClassRemote:
				remote++
			default:
				unknown++
			}
		}
		totLocal += local
		totRemote += remote
		totUnknown += unknown
		dec := local + remote
		share := 0.0
		if dec > 0 {
			share = float64(remote) / float64(dec)
		}
		s := shares[ix.Name]
		t.AddRow(ix.Name, dec+unknown, local, remote, unknown, report.Pct(share),
			report.Pct(s[rpi.StepPortCapacity]), report.Pct(s[rpi.StepRTTColo]),
			report.Pct(s[rpi.StepMultiIXP]), report.Pct(s[rpi.StepPrivate]))
	}
	t.AddRow("TOTAL", totLocal+totRemote+totUnknown, totLocal, totRemote, totUnknown,
		report.Pct(float64(totRemote)/float64(totLocal+totRemote)), "-", "-", "-", "-")
	t.Render(os.Stdout)

	fmt.Printf("\nmulti-IXP routers observed: %d\n", len(env.Report.MultiRouters))

	if *verbose {
		ix := env.StudiedIXPs(1)[0]
		fmt.Printf("\nPer-interface verdicts at %s:\n", ix.Name)
		var infs []*rpi.Inference
		for _, inf := range env.Report.Inferences {
			if inf.IXP == ix.Name {
				infs = append(infs, inf)
			}
		}
		sort.Slice(infs, func(i, j int) bool { return infs[i].Iface.Less(infs[j].Iface) })
		for _, inf := range infs {
			rtt := "-"
			if inf.HasRTT() {
				rtt = fmt.Sprintf("%.2fms", inf.RTTMinMs)
			}
			fmt.Printf("  %-16s %-8s %-8s via %-13s rtt=%s\n",
				inf.Iface, inf.ASN, inf.Class, inf.Step, rtt)
		}
	}
}
