// Command rpi-replay re-drives the durable delta log of an rpi-serve
// data directory and prints the inference state at any historical
// record index — the post-incident debugging tool: "what did the
// engine believe after delta N?".
//
// Usage:
//
//	rpi-replay -data-dir DIR [-seed N] [-scale N] [-upto N] [-summary]
//
// The base inputs (seed, scale) must match the ones the directory was
// written with — replay refuses a mismatched world rather than
// grafting a foreign log onto it. -upto bounds the replay at a delta
// sequence number (default: everything); snapshots newer than the
// bound are skipped, older ones shorten the replay. The directory is
// opened read-only: nothing is truncated or rewritten, even when the
// log ends in a torn record.
//
// Output is the full /v1 wire report on stdout, or a one-line summary
// with -summary.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rpeer/pkg/rpi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-replay: ")
	dataDir := flag.String("data-dir", "", "data directory written by rpi-serve (required)")
	seed := flag.Int64("seed", 1, "world generation seed the directory was created with")
	scale := flag.Int("scale", 1, "world scale factor the directory was created with")
	upTo := flag.Uint64("upto", ^uint64(0), "replay up to and including this delta sequence (default: all)")
	summary := flag.Bool("summary", false, "print a one-line summary instead of the wire report")
	flag.Parse()
	if *dataDir == "" {
		log.Print("missing -data-dir")
		flag.Usage()
		os.Exit(2)
	}

	log.Printf("assembling base inputs (seed %d, scale %dx)...", *seed, *scale)
	in, err := rpi.SyntheticInputs(*seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	eng, info, err := rpi.Replay(*dataDir, in, *upTo)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if info.SnapshotName != "" {
		log.Printf("started from snapshot %s (seq %d)", info.SnapshotName, info.SnapshotSeq)
	}
	log.Printf("replayed %d deltas, state is at seq %d", info.Replayed, info.Seq)
	if info.TornTail {
		log.Printf("log ends in a torn record (%s) at byte %d — left untouched (read-only)",
			info.TornReason, info.TruncatedAt)
	}

	rep := eng.Snapshot()
	if *summary {
		var local, remote int
		for _, inf := range rep.Inferences {
			switch inf.Class {
			case rpi.ClassLocal:
				local++
			case rpi.ClassRemote:
				remote++
			}
		}
		fmt.Printf("seq %d: %d memberships, %d local, %d remote, %d multi-IXP routers\n",
			info.Seq, len(rep.Inferences), local, remote, len(rep.MultiRouters))
		return
	}
	b, err := rpi.MarshalReport(rep)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(b)
	fmt.Println()
}
