// Command rpi-benchdiff compares two benchmark snapshots produced by
// rpi-benchsnap and fails (exit 1) when any headline benchmark
// regressed beyond a threshold. It is the teeth behind
// `make bench-compare BASE=BENCH_PRn.json`: a fresh snapshot is diffed
// against the committed baseline of the previous PR, so a perf claim
// that silently rots fails the build instead of surfacing at the next
// manual snapshot.
//
// Usage:
//
//	rpi-benchdiff -base BENCH_PR4.json -new /tmp/fresh.json
//	rpi-benchdiff -base BENCH_PR4.json -new fresh.json -threshold 0.5 -headline 'BenchmarkFullPipeline$'
//
// Besides ns/op, bytes/op and allocs/op are judged by the same
// threshold when both snapshots carry them (-benchmem runs): an
// allocation regression is a perf regression that merely hasn't hit
// the wall clock yet. Only benchmarks present in both snapshots and
// matching the headline pattern are compared (a renamed or newly added
// benchmark is not a regression). ns/op comparisons only make sense
// between runs on the same machine; CI wiring should compare
// runner-built snapshots with a generous threshold or pin the runner
// class.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
)

// Record mirrors rpi-benchsnap's per-benchmark layout. BytesPerOp and
// AllocsPerOp are pointers: absent means the snapshot predates
// -benchmem capture, which must not read as "zero allocations".
type Record struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot mirrors rpi-benchsnap's file layout.
type Snapshot struct {
	CPU   string   `json:"cpu,omitempty"`
	Bench []Record `json:"benchmarks"`
}

// defaultHeadline selects the perf-claim benchmarks: the shared-context
// pipeline, substrate construction, incremental apply, the HTTP front
// end and the scaling rungs.
const defaultHeadline = `^Benchmark(FullPipeline$|ContextBuild$|EngineApply/.*/incremental$|ServeHTTP/|ScaleWorld/)`

func load(path string) (map[string]Record, string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Record, len(s.Bench))
	for _, r := range s.Bench {
		out[r.Name] = r
	}
	return out, s.CPU, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-benchdiff: ")
	base := flag.String("base", "", "baseline snapshot (committed BENCH_PRn.json)")
	fresh := flag.String("new", "", "fresh snapshot to judge")
	threshold := flag.Float64("threshold", 0.20, "fail when ns/op, bytes/op or allocs/op grows by more than this fraction")
	headline := flag.String("headline", defaultHeadline, "regexp selecting the headline benchmarks")
	flag.Parse()
	if *base == "" || *fresh == "" {
		log.Fatal("need -base and -new")
	}
	re, err := regexp.Compile(*headline)
	if err != nil {
		log.Fatalf("bad -headline: %v", err)
	}

	baseRec, baseCPU, err := load(*base)
	if err != nil {
		log.Fatal(err)
	}
	newRec, newCPU, err := load(*fresh)
	if err != nil {
		log.Fatal(err)
	}
	if baseCPU != "" && newCPU != "" && baseCPU != newCPU {
		fmt.Printf("note: snapshots come from different CPUs (%q vs %q); ratios may reflect hardware, not code\n", baseCPU, newCPU)
	}

	names := make([]string, 0, len(baseRec))
	for name := range baseRec {
		names = append(names, name)
	}
	sort.Strings(names)

	// judge compares one metric of one benchmark, printing the row and
	// reporting whether it regressed past the threshold. Metrics
	// missing on either side (old snapshots without -benchmem, or a
	// zero baseline) are skipped, not failed.
	compared, regressions := 0, 0
	judge := func(name, unit string, b, n float64) {
		if b <= 0 {
			return
		}
		compared++
		ratio := n / b
		mark := " "
		if ratio > 1+*threshold {
			mark = "!"
			regressions++
		}
		fmt.Printf("%s %-55s %14.0f -> %14.0f %s  (%.2fx)\n", mark, name, b, n, unit, ratio)
	}
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		b := baseRec[name]
		n, ok := newRec[name]
		if !ok {
			continue
		}
		judge(name, "ns/op", b.NsPerOp, n.NsPerOp)
		if b.BytesPerOp != nil && n.BytesPerOp != nil {
			judge(name, "B/op", *b.BytesPerOp, *n.BytesPerOp)
		}
		if b.AllocsPerOp != nil && n.AllocsPerOp != nil {
			judge(name, "allocs/op", *b.AllocsPerOp, *n.AllocsPerOp)
		}
	}
	if compared == 0 {
		log.Fatal("no headline benchmarks in common; nothing compared")
	}
	if regressions > 0 {
		log.Fatalf("%d of %d headline metrics regressed beyond %.0f%%", regressions, compared, *threshold*100)
	}
	fmt.Printf("ok: %d headline metrics within %.0f%% of %s\n", compared, *threshold*100, *base)
}
