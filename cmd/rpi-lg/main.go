// Command rpi-lg serves a single IXP's looking glass over HTTP — the
// kind of public, rate-limited ping interface the paper's measurement
// campaign automates through Periscope.
//
// Endpoints:
//
//	GET /about
//	GET /ping?target=ADDR
//
// Usage:
//
//	rpi-lg [-seed N] [-ixp NAME] [-addr :8081]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"rpeer/internal/lgweb"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-lg: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	ixpName := flag.String("ixp", "", "IXP to serve (default: largest with an LG)")
	addr := flag.String("addr", ":8081", "listen address")
	flag.Parse()

	cfg := netsim.DefaultConfig()
	cfg.Seed = *seed
	w, err := netsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var vp *pingsim.VP
	for _, v := range pingsim.DeriveVPs(w, *seed+3) {
		if v.Kind != pingsim.KindLG {
			continue
		}
		if *ixpName == "" || w.IXP(v.IXP).Name == *ixpName {
			vp = v
			break
		}
	}
	if vp == nil {
		log.Fatalf("no looking glass found for %q", *ixpName)
	}
	log.Printf("serving looking glass of %s on %s", w.IXP(vp.IXP).Name, *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           lgweb.NewServer(w, vp, *seed),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
