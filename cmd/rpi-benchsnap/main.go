// Command rpi-benchsnap converts `go test -bench` output on stdin
// into a JSON snapshot, so benchmark trajectories can be compared
// across PRs without parsing text logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | rpi-benchsnap -o BENCH.json
//
// Each benchmark line becomes one record with its ns/op, B/op,
// allocs/op and any custom metrics (ACC%, COV%, ...).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file layout.
type Snapshot struct {
	GoOS   string   `json:"goos,omitempty"`
	GoArch string   `json:"goarch,omitempty"`
	Pkg    string   `json:"pkg,omitempty"`
	CPU    string   `json:"cpu,omitempty"`
	Bench  []Record `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-benchsnap: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	snap := Snapshot{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				snap.Bench = append(snap.Bench, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(snap.Bench) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rpi-benchsnap: wrote %d benchmarks to %s\n", len(snap.Bench), *out)
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFullPipeline-8  3  64908131 ns/op  16426717 B/op  78896 allocs/op  91.03 ACC%
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, r.NsPerOp > 0
}
