// Command rpi-benchsnap converts `go test -bench` output into a JSON
// snapshot, so benchmark trajectories can be compared across PRs
// without parsing text logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | rpi-benchsnap -o BENCH.json
//
// or, letting rpi-benchsnap drive `go test` itself (which also unlocks
// profiling for hot-path hunts):
//
//	rpi-benchsnap -bench 'BenchmarkFullPipeline$' -cpuprofile cpu.prof -o BENCH.json
//
// Each benchmark line becomes one record with its ns/op, B/op,
// allocs/op and any custom metrics (ACC%, COV%, ...).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the file layout.
type Snapshot struct {
	GoOS   string   `json:"goos,omitempty"`
	GoArch string   `json:"goarch,omitempty"`
	Pkg    string   `json:"pkg,omitempty"`
	CPU    string   `json:"cpu,omitempty"`
	Bench  []Record `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-benchsnap: ")
	out := flag.String("o", "", "output file (default stdout)")
	bench := flag.String("bench", "", "run `go test -bench` with this pattern instead of reading stdin")
	benchtime := flag.String("benchtime", "", "passed through to go test -benchtime (requires -bench)")
	pkg := flag.String("pkg", ".", "package to benchmark (requires -bench)")
	cpuprofile := flag.String("cpuprofile", "", "passed through to go test -cpuprofile: write a CPU profile of the benchmark run for hot-path hunts (requires -bench)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *bench == "" {
		if *benchtime != "" || *cpuprofile != "" {
			log.Fatal("-benchtime and -cpuprofile require -bench (they are flags of the go test run)")
		}
	} else {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem"}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		if *cpuprofile != "" {
			// Profiling makes `go test` keep the test binary; point it
			// at the temp dir instead of littering the repository.
			args = append(args, "-cpuprofile", *cpuprofile,
				"-o", filepath.Join(os.TempDir(), "rpi-benchsnap.test"))
		}
		args = append(args, *pkg)
		var sb strings.Builder
		cmd := exec.Command("go", args...)
		// Mirror the raw bench lines to stderr so the usual progress
		// stays visible while the snapshot parses the copy.
		cmd.Stdout = io.MultiWriter(&sb, os.Stderr)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			log.Fatalf("go %s: %v", strings.Join(args, " "), err)
		}
		src = strings.NewReader(sb.String())
	}

	snap := Snapshot{}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				snap.Bench = append(snap.Bench, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(snap.Bench) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rpi-benchsnap: wrote %d benchmarks to %s\n", len(snap.Bench), *out)
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkFullPipeline-8  3  64908131 ns/op  16426717 B/op  78896 allocs/op  91.03 ACC%
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Record{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, r.NsPerOp > 0
}
