package main

// Multi-tenant (-multi) mode: one internal/host registry of engines
// behind the shared serving plane, instead of one engine.

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rpeer/internal/admission"
	"rpeer/internal/host"
	"rpeer/internal/netsim"
	"rpeer/internal/wal"
	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"
)

type hostParams struct {
	addr, debugAddr, dataDir   string
	seed                       int64
	scale, workers             int
	fsync                      string
	fsyncInterval              time.Duration
	snapEvery                  int
	reqTimeout                 time.Duration
	admission                  admission.Config
	defaultTenant              string
	maxTenants                 int
	idleEvict, shutdownTimeout time.Duration
}

// tenantInputs derives a tenant's base world from its spec, and only
// its spec — a restarted host rebuilds every tenant identically.
// Profiles: "" / "paper" (paper-sized world), "paper-N" (scaled Nx),
// "tiny" (millisecond-scale world for tests and demos).
func tenantInputs(sp host.TenantSpec) (rpi.Inputs, error) {
	switch {
	case sp.Profile == "" || sp.Profile == "paper":
		return rpi.SyntheticInputs(sp.Seed, 1)
	case sp.Profile == "tiny":
		cfg := netsim.TinyConfig()
		if sp.Seed != 0 {
			cfg.Seed = sp.Seed
		}
		return rpi.InputsFromConfig(cfg, sp.Seed)
	case strings.HasPrefix(sp.Profile, "paper-"):
		scale, err := strconv.Atoi(strings.TrimPrefix(sp.Profile, "paper-"))
		if err != nil || scale < 1 {
			return rpi.Inputs{}, fmt.Errorf("bad profile %q: want paper-N with N >= 1", sp.Profile)
		}
		return rpi.SyntheticInputs(sp.Seed, scale)
	default:
		return rpi.Inputs{}, fmt.Errorf("unknown profile %q (want paper, paper-N or tiny)", sp.Profile)
	}
}

// persistOpts translates the -fsync/-snapshot-every flags into engine
// options (shared by the single-tenant and host modes).
func persistOpts(fsync string, fsyncInterval time.Duration, snapEvery int) ([]rpi.Option, error) {
	var opts []rpi.Option
	switch fsync {
	case "every":
		opts = append(opts, rpi.WithSync(rpi.SyncEveryDelta))
	case "interval":
		opts = append(opts, rpi.WithSyncInterval(fsyncInterval))
	case "off":
		opts = append(opts, rpi.WithSync(rpi.SyncOff))
	default:
		return nil, errors.New("bad -fsync: want every, interval or off")
	}
	return append(opts, rpi.WithSnapshotEvery(snapEvery)), nil
}

// runHost is main() for -multi: build the host, serve it, drain it.
func runHost(ctx context.Context, p hostParams) int {
	opts, err := persistOpts(p.fsync, p.fsyncInterval, p.snapEvery)
	if err != nil {
		log.Print(err)
		return 1
	}
	opts = append(opts, rpi.WithWorkers(p.workers))
	if p.dataDir == "" {
		// No durable root: tenant WALs live in memory for the process's
		// lifetime (engines still journal + snapshot, so per-tenant
		// quarantine recovery works; a restart starts empty).
		opts = append(opts, rpi.WithWALFS(wal.NewMemFS()))
		log.Print("no -data-dir: tenant state is in-memory (lost on restart)")
	}
	h, err := host.Open(host.Config{
		Dir:         p.dataDir,
		Inputs:      tenantInputs,
		Options:     opts,
		MaxTenants:  p.maxTenants,
		IdleTimeout: p.idleEvict,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	if p.defaultTenant != "" {
		err := h.Create(host.TenantSpec{
			Name: p.defaultTenant, Seed: p.seed, Profile: profileFor(p.scale),
		})
		if err != nil && !errors.Is(err, host.ErrTenantExists) {
			log.Print(err)
			return 1
		}
	}

	front := serve.NewHost(h, p.defaultTenant, serve.Config{
		Admission:      p.admission,
		RequestTimeout: p.reqTimeout,
	})
	publishHostVars(front)
	srv := &http.Server{
		Addr:              p.addr,
		Handler:           front,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ListenAndServe() }()
	log.Printf("multi-tenant host on %s (%d tenants registered; engines open on first touch)",
		p.addr, len(h.Tenants()))

	var dbg *http.Server
	dbgErr := make(chan error, 1)
	if p.debugAddr != "" {
		dbg = debugServer(p.debugAddr)
		go func() { dbgErr <- dbg.ListenAndServe() }()
		log.Printf("serving /debug/pprof and /debug/vars on %s", p.debugAddr)
	}

	select {
	case <-ctx.Done():
		log.Printf("signal received, draining connections (up to %s)...", p.shutdownTimeout)
	case err := <-srvErr:
		log.Printf("service listener stopped: %v", err)
	case err := <-dbgErr:
		log.Printf("debug listener stopped: %v", err)
		dbg = nil
		waitShutdown(ctx, srvErr)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), p.shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if dbg != nil {
		_ = dbg.Shutdown(drainCtx)
	}
	// Listeners are quiet: close every tenant engine cleanly (final
	// snapshots), bounded by the host's own drain timeout.
	if err := h.Close(); err != nil {
		log.Printf("host close: %v", err)
		return 1
	}
	log.Print("shut down cleanly")
	return 0
}

func profileFor(scale int) string {
	if scale <= 1 {
		return "paper"
	}
	return fmt.Sprintf("paper-%d", scale)
}

// publishHostVars exposes the host-mode gauges: per-tenant state
// (rpi.host), per-class and per-tenant admission counters
// (rpi.admission), and the handler panic net.
func publishHostVars(front *serve.HostServer) {
	h := front.Host()
	expvar.Publish("rpi.host", expvar.Func(func() interface{} { return h.Tenants() }))
	expvar.Publish("rpi.admission", front.Admission().Expvar())
	expvar.Publish("rpi.handler_panics", expvar.Func(func() interface{} { return front.HandlerPanics() }))
}
