// Command rpi-serve runs the remote peering inference service: one
// long-lived rpi.Engine over a generated world, exposed over HTTP/JSON
// (the /v1 wire schema of pkg/rpi).
//
// Endpoints:
//
//	GET  /healthz          liveness + applied-delta sequence
//	GET  /v1/infer         full inference report
//	GET  /v1/report/{ixp}  one IXP's report
//	POST /v1/apply         membership joins/leaves + RTT refreshes
//
// Usage:
//
//	rpi-serve [-seed N] [-scale N] [-addr :8090] [-workers N] [-debug-addr :8091]
//
// With -debug-addr set, a second listener exposes the Go runtime
// diagnostics — /debug/pprof/ (heap, CPU, goroutine profiles) and
// /debug/vars (expvar: engine sequence, inference counts, apply
// totals) — kept off the service address so the profiling surface is
// never reachable from the API network.
//
// Example session:
//
//	curl localhost:8090/v1/report/Frankfurt-IX
//	curl -X POST localhost:8090/v1/apply -d '{"leaves":[{"ixp":"Frankfurt-IX","iface":"185.0.0.9"}]}'
//	go tool pprof localhost:8091/debug/pprof/heap
package main

import (
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-serve: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	scale := flag.Int("scale", 1, "world scale factor (1 = paper-sized)")
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", 0, "inference shard workers (0 = one per CPU)")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof and expvar (empty = disabled)")
	flag.Parse()

	log.Printf("assembling inputs (seed %d, scale %dx)...", *seed, *scale)
	in, err := rpi.SyntheticInputs(*seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("building engine over %d memberships...", len(in.Dataset.IfaceIXP))
	eng, err := rpi.New(in, rpi.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	rep := eng.Snapshot()
	var local, remote int
	for _, inf := range rep.Inferences {
		switch inf.Class {
		case rpi.ClassLocal:
			local++
		case rpi.ClassRemote:
			remote++
		}
	}
	log.Printf("engine ready: %d memberships (%d local, %d remote), %d multi-IXP routers",
		len(rep.Inferences), local, remote, len(rep.MultiRouters))

	if *debugAddr != "" {
		go serveDebug(*debugAddr, eng)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving /v1 on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}

// serveDebug runs the diagnostics listener: the pprof handlers plus
// expvar gauges over the live engine (delta sequence, domain size,
// verdict mix), so heap and wall-time effects of substrate changes are
// observable on the serving binary without instrumenting the API.
func serveDebug(addr string, eng *rpi.Engine) {
	counts := func(want rpi.PeerClass) func() interface{} {
		return func() interface{} {
			n := 0
			for _, inf := range eng.Snapshot().Inferences {
				if inf.Class == want {
					n++
				}
			}
			return n
		}
	}
	expvar.Publish("rpi.seq", expvar.Func(func() interface{} { return eng.Seq() }))
	expvar.Publish("rpi.inferences", expvar.Func(func() interface{} {
		return len(eng.Snapshot().Inferences)
	}))
	expvar.Publish("rpi.local", expvar.Func(counts(rpi.ClassLocal)))
	expvar.Publish("rpi.remote", expvar.Func(counts(rpi.ClassRemote)))

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	dbg := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving /debug/pprof and /debug/vars on %s", addr)
	// Diagnostics are auxiliary: a busy port or a later listener error
	// must not take the healthy /v1 API down with it.
	if err := dbg.ListenAndServe(); err != nil {
		log.Printf("debug listener on %s stopped: %v", addr, err)
	}
}
