// Command rpi-serve runs the remote peering inference service: one
// long-lived rpi.Engine over a generated world, exposed over HTTP/JSON
// (the /v1 wire schema of pkg/rpi).
//
// Endpoints:
//
//	GET  /healthz          liveness + applied-delta sequence
//	GET  /readyz           readiness (503 until recovery finishes)
//	GET  /v1/infer         full inference report
//	GET  /v1/report/{ixp}  one IXP's report
//	POST /v1/apply         membership joins/leaves + RTT refreshes
//	GET  /v1/stream        server-sent events: verdict changes as they land
//
// Usage:
//
//	rpi-serve [-seed N] [-scale N] [-addr :8090] [-workers N]
//	          [-data-dir DIR] [-fsync every|interval|off] [-snapshot-every N]
//	          [-request-timeout 0] [-admit-read N] [-admit-cheap N]
//	          [-admit-write N] [-admit-stream N]
//	          [-debug-addr :8091] [-shutdown-timeout 10s]
//
// With -data-dir set the engine is crash-safe: every applied delta is
// journaled to a checksummed write-ahead log in DIR before it is
// acknowledged, columnar snapshots bound replay, and a restart
// recovers the exact pre-crash state (see pkg/rpi.Open). The listener
// binds immediately and /healthz answers while recovery replays;
// /readyz (and the /v1 endpoints) go green when the engine is up.
//
// The serving plane is overload-safe and self-healing. Every /v1
// endpoint passes through per-class admission control: cheap per-IXP
// reads, full-report reads, mutating applies and SSE streams are each
// independently bounded (machine-scaled defaults; override slots with
// the -admit-* flags), and saturation answers 503 + Retry-After
// instead of queueing without bound. -request-timeout caps the
// end-to-end time of non-streaming requests, and the deadline
// propagates into the engine — an abandoned request stops costing
// anything. A panic escaping the engine's Apply (or a broken WAL)
// quarantines the engine instead of killing the process: reads keep
// serving the last good snapshot, writes answer 503, and with a
// -data-dir a background re-Open heals the engine from the journal and
// the plane goes writable again.
//
// SIGINT/SIGTERM shut the service down gracefully: in-flight requests
// drain (bounded by -shutdown-timeout), then the engine closes,
// publishing a final snapshot so the next start replays nothing.
//
// With -debug-addr set, a second listener exposes the Go runtime
// diagnostics — /debug/pprof/ (heap, CPU, goroutine profiles) and
// /debug/vars (expvar: engine sequence, inference counts, dropped
// subscriber updates, per-class admission counters, supervisor fault
// and recovery counts) — kept off the service address so the profiling
// surface is never reachable from the API network.
//
// Multi-tenant mode (-multi) replaces the single engine with an
// internal/host tenant registry: one engine, one data directory and
// one supervisor per tenant, all behind the same listener and the same
// admission controller (with per-tenant fairness on top — one tenant
// may hold at most half of a class's slots by default). Tenants are
// created and deleted over HTTP and served under /v1/t/{tenant}/...;
// the classic single-tenant routes keep working as aliases for the
// -default-tenant, so existing clients run unchanged. Engines open
// lazily on first request and, with -idle-evict, close (final
// snapshot) after sitting idle:
//
//	POST   /v1/tenants            {"name":"acme","seed":7,"profile":"tiny"}
//	GET    /v1/tenants            every tenant's live state
//	DELETE /v1/tenants/{tenant}   drop a tenant (?purge=1 removes its data)
//	GET    /v1/t/{tenant}/infer   that tenant's full report
//
// Tenant profiles: "paper" (default, the paper-sized world; "paper-N"
// scales it Nx) and "tiny" (a millisecond-scale world for tests and
// demos). A tenant's world derives deterministically from its (seed,
// profile), so a host restart rebuilds or recovers every tenant
// exactly.
//
// Example session:
//
//	curl localhost:8090/v1/report/Frankfurt-IX
//	curl -X POST localhost:8090/v1/apply -d '{"leaves":[{"ixp":"Frankfurt-IX","iface":"185.0.0.9"}]}'
//	curl -N localhost:8090/v1/stream
//	go tool pprof localhost:8091/debug/pprof/heap
package main

import (
	"context"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rpeer/internal/admission"
	"rpeer/internal/supervisor"
	"rpeer/internal/worldfile"
	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-serve: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	scale := flag.Int("scale", 1, "world scale factor (1 = paper-sized)")
	worldPath := flag.String("world", "", "load the input bundle from this .rpw world file (written by rpi-gen -o; overrides -seed/-scale)")
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", 0, "inference shard workers (0 = one per CPU)")
	dataDir := flag.String("data-dir", "", "durable state directory: delta WAL + snapshots (empty = in-memory engine)")
	fsync := flag.String("fsync", "every", "WAL fsync policy: every (per record), interval, off")
	fsyncInterval := flag.Duration("fsync-interval", time.Second, "flush period for -fsync interval")
	snapEvery := flag.Int("snapshot-every", rpi.DefaultSnapshotEvery, "deltas between automatic snapshots (0 = only on shutdown)")
	reqTimeout := flag.Duration("request-timeout", 0, "end-to-end deadline for non-streaming requests (0 = none)")
	admitCheap := flag.Int("admit-cheap", 0, "concurrent per-IXP report reads (0 = scale to CPUs)")
	admitRead := flag.Int("admit-read", 0, "concurrent full-report reads (0 = scale to CPUs)")
	admitWrite := flag.Int("admit-write", 0, "concurrent applies (0 = default 1; applies serialize anyway)")
	admitStream := flag.Int("admit-stream", 0, "concurrent SSE streams (0 = scale to CPUs)")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof and expvar (empty = disabled)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	multi := flag.Bool("multi", false, "multi-tenant mode: a tenant host instead of one engine")
	defaultTenant := flag.String("default-tenant", "default", "tenant the legacy /v1 routes alias to in -multi mode (empty = tenant routes only)")
	maxTenants := flag.Int("max-tenants", 64, "tenant registry bound in -multi mode")
	idleEvict := flag.Duration("idle-evict", 0, "evict a tenant's engine after this long without traffic in -multi mode (0 = never)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *multi {
		os.Exit(runHost(ctx, hostParams{
			addr: *addr, debugAddr: *debugAddr, dataDir: *dataDir,
			seed: *seed, scale: *scale, workers: *workers,
			fsync: *fsync, fsyncInterval: *fsyncInterval, snapEvery: *snapEvery,
			reqTimeout:    *reqTimeout,
			admission:     admissionConfig(*admitCheap, *admitRead, *admitWrite, *admitStream),
			defaultTenant: *defaultTenant, maxTenants: *maxTenants,
			idleEvict: *idleEvict, shutdownTimeout: *shutdownTimeout,
		}))
	}

	// The supervisor owns the engine pointer. reopen is bound after the
	// first engine build (it needs the assembled inputs) and strictly
	// before the engine is published — no fault can race the binding.
	var reopen supervisor.Reopen
	supOpts := supervisor.Options{RetryInterval: time.Second}
	if *dataDir != "" {
		supOpts.Reopen = func() (*rpi.Engine, *rpi.RecoveryInfo, error) { return reopen() }
	}
	guard := supervisor.New(supOpts)

	// Bind the service port before the (possibly long) engine build:
	// orchestrators see liveness immediately, readiness when recovery
	// completes.
	front := serve.NewSupervised(guard, serve.Config{
		Admission:      admissionConfig(*admitCheap, *admitRead, *admitWrite, *admitStream),
		RequestTimeout: *reqTimeout,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           front,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ListenAndServe() }()
	log.Printf("serving /v1 on %s (pending until engine is ready)", *addr)

	var dbg *http.Server
	dbgErr := make(chan error, 1)
	if *debugAddr != "" {
		dbg = debugServer(*debugAddr)
		go func() { dbgErr <- dbg.ListenAndServe() }()
		log.Printf("serving /debug/pprof and /debug/vars on %s", *debugAddr)
	}

	eng, reopenFn, err := buildEngine(*seed, *scale, *worldPath, *workers, *dataDir, *fsync, *fsyncInterval, *snapEvery)
	if err != nil {
		log.Print(err)
		srv.Close()
		os.Exit(1)
	}
	reopen = reopenFn
	publishServeVars(front)
	front.SetEngine(eng)
	log.Printf("ready: serving at seq %d", eng.Seq())

	// Wait for a shutdown signal or a listener failure.
	select {
	case <-ctx.Done():
		log.Printf("signal received, draining connections (up to %s)...", *shutdownTimeout)
	case err := <-srvErr:
		log.Printf("service listener stopped: %v", err)
	case err := <-dbgErr:
		// Diagnostics are auxiliary: a busy port must not take the
		// healthy /v1 API down with it.
		log.Printf("debug listener stopped: %v", err)
		dbg = nil
		waitShutdown(ctx, srvErr)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if dbg != nil {
		_ = dbg.Shutdown(drainCtx)
	}
	// Close after the listeners stop: no request can race the final
	// snapshot, and the last acknowledged delta is on disk. The guard
	// closes the current engine (a quarantined one was already
	// abandoned; its durable state is the acknowledged prefix).
	if err := guard.Close(); err != nil {
		log.Printf("engine close: %v", err)
		os.Exit(1)
	}
	if cur := guard.Engine(); cur != nil {
		log.Printf("shut down cleanly at seq %d", cur.Seq())
	}
}

// admissionConfig translates the -admit-* slot flags into per-class
// limits: a set flag gets a queue twice its depth and the class's
// default patience; an unset flag keeps the machine-scaled default.
func admissionConfig(cheap, read, write, stream int) admission.Config {
	var cfg admission.Config
	if cheap > 0 {
		cfg.Cheap = admission.Limits{Slots: cheap, Queue: 2 * cheap, MaxWait: 2 * time.Second}
	}
	if read > 0 {
		cfg.Read = admission.Limits{Slots: read, Queue: 2 * read, MaxWait: 2 * time.Second}
	}
	if write > 0 {
		cfg.Write = admission.Limits{Slots: write, Queue: 2 * write, MaxWait: 5 * time.Second}
	}
	if stream > 0 {
		cfg.Stream = admission.Limits{Slots: stream}
	}
	return cfg
}

// waitShutdown keeps serving after a debug-listener failure until a
// real stop condition arrives.
func waitShutdown(ctx context.Context, srvErr chan error) {
	select {
	case <-ctx.Done():
	case err := <-srvErr:
		log.Printf("service listener stopped: %v", err)
	}
}

// buildEngine assembles the inputs — generated in-process, or loaded
// from a pre-generated .rpw world file (the fast path at scale) — and
// builds either an in-memory engine or, with a data directory, a
// crash-safe persistent one. For a persistent engine it also returns
// the reopen closure the supervisor uses to heal a quarantined engine
// from the same directory.
func buildEngine(seed int64, scale int, worldPath string, workers int, dataDir, fsync string, fsyncInterval time.Duration, snapEvery int) (*rpi.Engine, supervisor.Reopen, error) {
	var (
		in  rpi.Inputs
		err error
	)
	if worldPath != "" {
		log.Printf("loading world bundle %s...", worldPath)
		start := time.Now()
		in, err = worldfile.Load(worldPath)
		if err != nil {
			return nil, nil, err
		}
		log.Printf("world loaded in %s: %d memberships, seed %d",
			time.Since(start).Round(time.Millisecond), len(in.World.Members), in.Seed)
	} else {
		log.Printf("assembling inputs (seed %d, scale %dx)...", seed, scale)
		in, err = rpi.SyntheticInputs(seed, scale)
		if err != nil {
			return nil, nil, err
		}
	}
	log.Printf("building engine over %d memberships...", len(in.Dataset.IfaceIXP))
	opts := []rpi.Option{rpi.WithWorkers(workers)}
	var (
		eng    *rpi.Engine
		reopen supervisor.Reopen
	)
	if dataDir == "" {
		eng, err = rpi.New(in, opts...)
	} else {
		popts, perr := persistOpts(fsync, fsyncInterval, snapEvery)
		if perr != nil {
			return nil, nil, perr
		}
		opts = append(opts, popts...)
		reopen = func() (*rpi.Engine, *rpi.RecoveryInfo, error) {
			return rpi.Open(dataDir, in, opts...)
		}
		var info *rpi.RecoveryInfo
		eng, info, err = rpi.Open(dataDir, in, opts...)
		if err != nil {
			return nil, nil, err
		}
		switch {
		case info.SnapshotName != "":
			log.Printf("recovered %s: snapshot %s (seq %d) + %d replayed deltas",
				dataDir, info.SnapshotName, info.SnapshotSeq, info.Replayed)
		case info.Replayed > 0:
			log.Printf("recovered %s: %d replayed deltas", dataDir, info.Replayed)
		default:
			log.Printf("fresh data directory %s", dataDir)
		}
		if info.TornTail {
			log.Printf("truncated torn log tail at byte %d (%s) — crash artifact, state is consistent",
				info.TruncatedAt, info.TornReason)
		}
	}
	if err != nil {
		return nil, nil, err
	}
	rep := eng.Snapshot()
	var local, remote int
	for _, inf := range rep.Inferences {
		switch inf.Class {
		case rpi.ClassLocal:
			local++
		case rpi.ClassRemote:
			remote++
		}
	}
	log.Printf("engine ready: %d memberships (%d local, %d remote), %d multi-IXP routers, seq %d",
		len(rep.Inferences), local, remote, len(rep.MultiRouters), eng.Seq())
	return eng, reopen, nil
}

// publishServeVars exposes live serving-plane gauges through expvar
// (served on the debug listener): delta sequence, domain size, verdict
// mix, the slow-subscriber drop counter, per-class admission counters,
// and the supervisor's fault/recovery state. All gauges read through
// the guard, so they follow the engine across quarantine recoveries.
func publishServeVars(front *serve.Server) {
	guard := front.Guard()
	engine := func() *rpi.Engine { return guard.Engine() }
	counts := func(want rpi.PeerClass) func() interface{} {
		return func() interface{} {
			eng := engine()
			if eng == nil {
				return 0
			}
			n := 0
			for _, inf := range eng.Snapshot().Inferences {
				if inf.Class == want {
					n++
				}
			}
			return n
		}
	}
	expvar.Publish("rpi.seq", expvar.Func(func() interface{} {
		if eng := engine(); eng != nil {
			return eng.Seq()
		}
		return 0
	}))
	expvar.Publish("rpi.inferences", expvar.Func(func() interface{} {
		if eng := engine(); eng != nil {
			return len(eng.Snapshot().Inferences)
		}
		return 0
	}))
	expvar.Publish("rpi.local", expvar.Func(counts(rpi.ClassLocal)))
	expvar.Publish("rpi.remote", expvar.Func(counts(rpi.ClassRemote)))
	expvar.Publish("rpi.dropped_updates", expvar.Func(func() interface{} {
		if eng := engine(); eng != nil {
			return eng.DroppedUpdates()
		}
		return uint64(0)
	}))
	expvar.Publish("rpi.admission", front.Admission().Expvar())
	expvar.Publish("rpi.supervisor", expvar.Func(func() interface{} { return guard.Stats() }))
	expvar.Publish("rpi.handler_panics", expvar.Func(func() interface{} { return front.HandlerPanics() }))
}

// debugServer builds the diagnostics listener: pprof + expvar, with
// the same timeout hygiene as the service listener.
func debugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
