// Command rpi-serve runs the remote peering inference service: one
// long-lived rpi.Engine over a generated world, exposed over HTTP/JSON
// (the /v1 wire schema of pkg/rpi).
//
// Endpoints:
//
//	GET  /healthz          liveness + applied-delta sequence
//	GET  /v1/infer         full inference report
//	GET  /v1/report/{ixp}  one IXP's report
//	POST /v1/apply         membership joins/leaves + RTT refreshes
//
// Usage:
//
//	rpi-serve [-seed N] [-scale N] [-addr :8090] [-workers N]
//
// Example session:
//
//	curl localhost:8090/v1/report/Frankfurt-IX
//	curl -X POST localhost:8090/v1/apply -d '{"leaves":[{"ixp":"Frankfurt-IX","iface":"185.0.0.9"}]}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-serve: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	scale := flag.Int("scale", 1, "world scale factor (1 = paper-sized)")
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", 0, "inference shard workers (0 = one per CPU)")
	flag.Parse()

	log.Printf("assembling inputs (seed %d, scale %dx)...", *seed, *scale)
	in, err := rpi.SyntheticInputs(*seed, *scale)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("building engine over %d memberships...", len(in.Dataset.IfaceIXP))
	eng, err := rpi.New(in, rpi.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	rep := eng.Snapshot()
	var local, remote int
	for _, inf := range rep.Inferences {
		switch inf.Class {
		case rpi.ClassLocal:
			local++
		case rpi.ClassRemote:
			remote++
		}
	}
	log.Printf("engine ready: %d memberships (%d local, %d remote), %d multi-IXP routers",
		len(rep.Inferences), local, remote, len(rep.MultiRouters))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(eng),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving /v1 on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
