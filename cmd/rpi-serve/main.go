// Command rpi-serve runs the remote peering inference service: one
// long-lived rpi.Engine over a generated world, exposed over HTTP/JSON
// (the /v1 wire schema of pkg/rpi).
//
// Endpoints:
//
//	GET  /healthz          liveness + applied-delta sequence
//	GET  /readyz           readiness (503 until recovery finishes)
//	GET  /v1/infer         full inference report
//	GET  /v1/report/{ixp}  one IXP's report
//	POST /v1/apply         membership joins/leaves + RTT refreshes
//
// Usage:
//
//	rpi-serve [-seed N] [-scale N] [-addr :8090] [-workers N]
//	          [-data-dir DIR] [-fsync every|interval|off] [-snapshot-every N]
//	          [-debug-addr :8091] [-shutdown-timeout 10s]
//
// With -data-dir set the engine is crash-safe: every applied delta is
// journaled to a checksummed write-ahead log in DIR before it is
// acknowledged, columnar snapshots bound replay, and a restart
// recovers the exact pre-crash state (see pkg/rpi.Open). The listener
// binds immediately and /healthz answers while recovery replays;
// /readyz (and the /v1 endpoints) go green when the engine is up.
//
// SIGINT/SIGTERM shut the service down gracefully: in-flight requests
// drain (bounded by -shutdown-timeout), then the engine closes,
// publishing a final snapshot so the next start replays nothing.
//
// With -debug-addr set, a second listener exposes the Go runtime
// diagnostics — /debug/pprof/ (heap, CPU, goroutine profiles) and
// /debug/vars (expvar: engine sequence, inference counts, dropped
// subscriber updates) — kept off the service address so the profiling
// surface is never reachable from the API network.
//
// Example session:
//
//	curl localhost:8090/v1/report/Frankfurt-IX
//	curl -X POST localhost:8090/v1/apply -d '{"leaves":[{"ixp":"Frankfurt-IX","iface":"185.0.0.9"}]}'
//	go tool pprof localhost:8091/debug/pprof/heap
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-serve: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	scale := flag.Int("scale", 1, "world scale factor (1 = paper-sized)")
	addr := flag.String("addr", ":8090", "listen address")
	workers := flag.Int("workers", 0, "inference shard workers (0 = one per CPU)")
	dataDir := flag.String("data-dir", "", "durable state directory: delta WAL + snapshots (empty = in-memory engine)")
	fsync := flag.String("fsync", "every", "WAL fsync policy: every (per record), interval, off")
	fsyncInterval := flag.Duration("fsync-interval", time.Second, "flush period for -fsync interval")
	snapEvery := flag.Int("snapshot-every", rpi.DefaultSnapshotEvery, "deltas between automatic snapshots (0 = only on shutdown)")
	debugAddr := flag.String("debug-addr", "", "listen address for /debug/pprof and expvar (empty = disabled)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Bind the service port before the (possibly long) engine build:
	// orchestrators see liveness immediately, readiness when recovery
	// completes.
	front := serve.NewPending()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           front,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.ListenAndServe() }()
	log.Printf("serving /v1 on %s (pending until engine is ready)", *addr)

	var dbg *http.Server
	dbgErr := make(chan error, 1)
	if *debugAddr != "" {
		dbg = debugServer(*debugAddr)
		go func() { dbgErr <- dbg.ListenAndServe() }()
		log.Printf("serving /debug/pprof and /debug/vars on %s", *debugAddr)
	}

	eng, err := buildEngine(*seed, *scale, *workers, *dataDir, *fsync, *fsyncInterval, *snapEvery)
	if err != nil {
		log.Print(err)
		srv.Close()
		os.Exit(1)
	}
	publishEngineVars(eng)
	front.SetEngine(eng)
	log.Printf("ready: serving at seq %d", eng.Seq())

	// Wait for a shutdown signal or a listener failure.
	select {
	case <-ctx.Done():
		log.Printf("signal received, draining connections (up to %s)...", *shutdownTimeout)
	case err := <-srvErr:
		log.Printf("service listener stopped: %v", err)
	case err := <-dbgErr:
		// Diagnostics are auxiliary: a busy port must not take the
		// healthy /v1 API down with it.
		log.Printf("debug listener stopped: %v", err)
		dbg = nil
		waitShutdown(ctx, srvErr)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if dbg != nil {
		_ = dbg.Shutdown(drainCtx)
	}
	// Close after the listeners stop: no request can race the final
	// snapshot, and the last acknowledged delta is on disk.
	if err := eng.Close(); err != nil {
		log.Printf("engine close: %v", err)
		os.Exit(1)
	}
	log.Printf("shut down cleanly at seq %d", eng.Seq())
}

// waitShutdown keeps serving after a debug-listener failure until a
// real stop condition arrives.
func waitShutdown(ctx context.Context, srvErr chan error) {
	select {
	case <-ctx.Done():
	case err := <-srvErr:
		log.Printf("service listener stopped: %v", err)
	}
}

// buildEngine assembles the inputs and builds either an in-memory
// engine or, with a data directory, a crash-safe persistent one.
func buildEngine(seed int64, scale, workers int, dataDir, fsync string, fsyncInterval time.Duration, snapEvery int) (*rpi.Engine, error) {
	log.Printf("assembling inputs (seed %d, scale %dx)...", seed, scale)
	in, err := rpi.SyntheticInputs(seed, scale)
	if err != nil {
		return nil, err
	}
	log.Printf("building engine over %d memberships...", len(in.Dataset.IfaceIXP))
	opts := []rpi.Option{rpi.WithWorkers(workers)}
	var eng *rpi.Engine
	if dataDir == "" {
		eng, err = rpi.New(in, opts...)
	} else {
		switch fsync {
		case "every":
			opts = append(opts, rpi.WithSync(rpi.SyncEveryDelta))
		case "interval":
			opts = append(opts, rpi.WithSyncInterval(fsyncInterval))
		case "off":
			opts = append(opts, rpi.WithSync(rpi.SyncOff))
		default:
			return nil, errors.New("bad -fsync: want every, interval or off")
		}
		opts = append(opts, rpi.WithSnapshotEvery(snapEvery))
		var info *rpi.RecoveryInfo
		eng, info, err = rpi.Open(dataDir, in, opts...)
		if err != nil {
			return nil, err
		}
		switch {
		case info.SnapshotName != "":
			log.Printf("recovered %s: snapshot %s (seq %d) + %d replayed deltas",
				dataDir, info.SnapshotName, info.SnapshotSeq, info.Replayed)
		case info.Replayed > 0:
			log.Printf("recovered %s: %d replayed deltas", dataDir, info.Replayed)
		default:
			log.Printf("fresh data directory %s", dataDir)
		}
		if info.TornTail {
			log.Printf("truncated torn log tail at byte %d (%s) — crash artifact, state is consistent",
				info.TruncatedAt, info.TornReason)
		}
	}
	if err != nil {
		return nil, err
	}
	rep := eng.Snapshot()
	var local, remote int
	for _, inf := range rep.Inferences {
		switch inf.Class {
		case rpi.ClassLocal:
			local++
		case rpi.ClassRemote:
			remote++
		}
	}
	log.Printf("engine ready: %d memberships (%d local, %d remote), %d multi-IXP routers, seq %d",
		len(rep.Inferences), local, remote, len(rep.MultiRouters), eng.Seq())
	return eng, nil
}

// publishEngineVars exposes live engine gauges through expvar (served
// on the debug listener): delta sequence, domain size, verdict mix,
// and the slow-subscriber drop counter.
func publishEngineVars(eng *rpi.Engine) {
	counts := func(want rpi.PeerClass) func() interface{} {
		return func() interface{} {
			n := 0
			for _, inf := range eng.Snapshot().Inferences {
				if inf.Class == want {
					n++
				}
			}
			return n
		}
	}
	expvar.Publish("rpi.seq", expvar.Func(func() interface{} { return eng.Seq() }))
	expvar.Publish("rpi.inferences", expvar.Func(func() interface{} {
		return len(eng.Snapshot().Inferences)
	}))
	expvar.Publish("rpi.local", expvar.Func(counts(rpi.ClassLocal)))
	expvar.Publish("rpi.remote", expvar.Func(counts(rpi.ClassRemote)))
	expvar.Publish("rpi.dropped_updates", expvar.Func(func() interface{} {
		return eng.DroppedUpdates()
	}))
}

// debugServer builds the diagnostics listener: pprof + expvar, with
// the same timeout hygiene as the service listener.
func debugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
