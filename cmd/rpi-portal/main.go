// Command rpi-portal serves the remote peering inference portal
// (paper Section 9): a JSON API over the current inference snapshot.
//
// Endpoints:
//
//	GET /healthz
//	GET /api/summary
//	GET /api/ixps
//	GET /api/ixps/{name}
//
// Usage:
//
//	rpi-portal [-seed N] [-addr :8080]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"rpeer/internal/exp"
	"rpeer/internal/portal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rpi-portal: ")
	seed := flag.Int64("seed", 1, "world generation seed")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	log.Printf("assembling inference snapshot (seed %d)...", *seed)
	env, err := exp.NewEnv(*seed)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           portal.New(env),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
